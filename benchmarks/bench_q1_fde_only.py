"""§IV-B (Q1) — coverage of function starts using FDEs alone."""

from repro.eval import run_fde_coverage_study
from repro.eval.tables import render_fde_coverage


def test_q1_fde_only_coverage(
    benchmark, selfbuilt_corpus, report_writer, make_evaluator
):
    evaluator = make_evaluator(selfbuilt_corpus)
    study = benchmark.pedantic(
        lambda: evaluator.timed(
            "fde_coverage", run_fde_coverage_study, selfbuilt_corpus, evaluator=evaluator
        ),
        rounds=1,
        iterations=1,
    )
    evaluator.write_bench(
        "q1_fde_only", extra={"coverage_percent": round(study.coverage_percent, 3)}
    )
    report_writer("q1_fde_only", render_fde_coverage(study))

    # Paper: 99.87 % coverage; misses are assembly functions and
    # __clang_call_terminate instances, concentrated in few binaries.
    assert study.coverage_percent > 98.0
    assert set(study.missed_by_kind) <= {"asm", "terminate"}
    assert study.binaries_with_misses < study.binary_count / 2
