"""Operand model for x86-64 instructions.

Three operand kinds exist in the subset we model: registers (the
:class:`~repro.x86.registers.Register` objects themselves), immediates
(:class:`Imm`) and memory references (:class:`Mem`).  Memory references cover
the general ``[base + index*scale + disp]`` addressing form plus
RIP-relative addressing, which is enough for every pattern compilers emit for
data access, jump tables and PLT-style indirect transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86.registers import Register


@dataclass(frozen=True)
class Imm:
    """An immediate operand.

    Attributes:
        value: the (signed) immediate value.
        size: encoded width in bytes (1, 4 or 8).
    """

    value: int
    size: int = 4

    def __str__(self) -> str:  # pragma: no cover - display helper
        return hex(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + disp]`` or ``[rip + disp]``.

    Attributes:
        base: base register, or ``None`` for absolute / index-only forms.
        index: index register, or ``None``.
        scale: index scale factor (1, 2, 4 or 8).
        disp: signed displacement.
        rip_relative: whether the operand is RIP-relative (``[rip + disp]``).
        size: access size in bytes (used for display only).
    """

    base: Register | None = None
    index: Register | None = None
    scale: int = 1
    disp: int = 0
    rip_relative: bool = False
    size: int = 8

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid SIB scale: {self.scale}")
        if self.rip_relative and (self.base is not None or self.index is not None):
            raise ValueError("RIP-relative operands cannot have base/index registers")

    def __str__(self) -> str:  # pragma: no cover - display helper
        parts: list[str] = []
        if self.rip_relative:
            parts.append("rip")
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}")
        if self.disp or not parts:
            parts.append(hex(self.disp))
        return "[" + "+".join(parts) + "]"

    def absolute_target(self, instruction_end: int) -> int | None:
        """The absolute address referenced, if statically known.

        For RIP-relative operands the target is ``end-of-instruction + disp``.
        For absolute (no-register) operands it is the displacement itself.
        Returns ``None`` when the address depends on register values.
        """
        if self.rip_relative:
            return instruction_end + self.disp
        if self.base is None and self.index is None:
            return self.disp
        return None
