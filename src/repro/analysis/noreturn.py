"""Non-returning function analysis.

The safe pipeline uses the *precise* mode: a function is non-returning only
when no reachable path ends in a ``ret`` (the DYNINST-style fix-point the
paper reuses, §IV-C).  The *eager* mode over-approximates — any function that
contains an abort-style terminator or calls a known non-returning function on
any path is treated as non-returning — and models the inaccuracy that makes
GHIDRA's control-flow repairing remove true function starts (§IV-C).
"""

from __future__ import annotations

from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.result import DisassemblyResult
from repro.elf.image import BinaryImage


class NoreturnAnalysis:
    """Classify detected functions as returning / non-returning."""

    def __init__(self, image: BinaryImage, mode: str = "precise"):
        if mode not in ("precise", "eager"):
            raise ValueError(f"unknown noreturn mode: {mode}")
        self.image = image
        self.mode = mode

    def compute(
        self, result: DisassemblyResult, disassembler: RecursiveDisassembler | None = None
    ) -> set[int]:
        """Return the set of non-returning function starts in ``result``."""
        if self.mode == "precise":
            disassembler = disassembler or RecursiveDisassembler(self.image)
            return {
                start for start in result.functions if disassembler.is_noreturn(start)
            }
        return self._eager(result)

    def _eager(self, result: DisassemblyResult) -> set[int]:
        # Over-approximation: any function containing an abort-style
        # terminator anywhere is flagged, regardless of whether other paths
        # return.  This is the kind of imprecision that makes control-flow
        # repairing remove true function starts.
        noreturn: set[int] = set()
        for start, function in result.functions.items():
            if any(i.mnemonic in ("ud2", "hlt") for i in function.instructions.values()):
                noreturn.add(start)
        return noreturn
