"""GHIDRA-style detector model.

Strategies (paper §IV-C / §IV-D): seed from symbols and FDEs, recursive
disassembly, *control-flow repairing* (remove the function start after a
non-returning call when nothing else references it), a *thunk* heuristic
(the target of a function that starts with a jump becomes a function start),
optional prologue matching and an optional heuristic tail-call detector.
The toggles correspond to the Figure 5a ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.noreturn import NoreturnAnalysis
from repro.baselines.base import BaselineTool
from repro.core.context import AnalysisContext, context_for
from repro.core.registry import register_detector
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@dataclass(frozen=True)
class GhidraOptions:
    """Strategy toggles matching Figure 5a."""

    use_recursion: bool = True
    control_flow_repair: bool = False
    thunk_heuristic: bool = True
    function_matching: bool = False
    tail_call_heuristic: bool = False


@register_detector(
    "ghidra",
    options=GhidraOptions,
    order=70,
    comparison=True,
    needs_eh_frame=True,
    cet_aware=True,
    description="FDE+symbol seeds, recursion, thunks and optional repair",
)
class GhidraLike(BaselineTool):
    """A strategy-faithful model of GHIDRA's function detection."""

    def __init__(self, options: GhidraOptions | None = None):
        self.options = options or GhidraOptions()

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        options = self.options
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)

        seeds = self._fde_starts(image) | self._symbol_starts(image)
        seeds = {s for s in seeds if image.is_executable_address(s)}
        result.record_stage("seeds", seeds)
        if not options.use_recursion:
            return result

        disassembler, disassembly, starts = self._recursive(image, seeds, context)
        result.disassembly = disassembly
        result.record_stage("recursion", starts - result.function_starts)

        if options.control_flow_repair:
            removed = self._control_flow_repair(image, disassembly, result.function_starts)
            result.record_stage("cfr", set(), removed)

        if options.thunk_heuristic:
            added = self._thunk_targets(image, disassembly, result.function_starts)
            result.record_stage("thunk", added)

        if options.function_matching:
            added = self._strict_function_matching(
                image, disassembly, result.function_starts, context
            )
            grown = self._grow_from_matches(image, disassembler, disassembly, added)
            result.record_stage("fsig", grown - result.function_starts)

        if options.tail_call_heuristic:
            added = self._heuristic_tail_calls(image, disassembly, result.function_starts)
            result.record_stage("tailcall", added - result.function_starts)

        return result

    # ------------------------------------------------------------------
    def _control_flow_repair(
        self, image: BinaryImage, disassembly, starts: set[int]
    ) -> set[int]:
        """Remove starts that follow a non-returning function and lack references.

        The noreturn analysis used here is deliberately the eager
        (over-approximating) one; combined with the incompleteness of
        reference collection this removes true function starts, which is the
        coverage loss the paper measures for GHIDRA.
        """
        noreturn = NoreturnAnalysis(image, mode="eager").compute(disassembly)
        referenced = self._reference_targets(disassembly)
        ordered = sorted(starts)
        removed: set[int] = set()
        for index, start in enumerate(ordered):
            if index == 0 or start == image.entry_point:
                continue
            if start in referenced:
                continue
            previous = ordered[index - 1]
            if previous in noreturn:
                removed.add(start)
        return removed

    def _thunk_targets(
        self, image: BinaryImage, disassembly, starts: set[int]
    ) -> set[int]:
        """A function that begins with a jump is a thunk; its target is a start."""
        added: set[int] = set()
        for start in starts:
            function = disassembly.functions.get(start)
            if function is None:
                continue
            first = function.instructions.get(start)
            if first is None:
                continue
            if first.mnemonic == "endbr64":
                first = function.instructions.get(first.end)
            if first is None or not first.is_unconditional_jump:
                continue
            target = first.branch_target
            if target is not None and image.is_executable_address(target):
                if target not in starts:
                    added.add(target)
        return added

    def _strict_function_matching(
        self,
        image: BinaryImage,
        disassembly,
        starts: set[int],
        context: AnalysisContext | None = None,
    ) -> set[int]:
        """GHIDRA's matcher only fires on aligned matches right after padding."""
        gaps = self._gaps(image, disassembly)
        matches = self._prologue_matches(image, gaps, context)
        strict: set[int] = set()
        for address in matches:
            if address % 16 != 0 or address in starts:
                continue
            try:
                before = image.read(address - 1, 1)
            except ValueError:
                continue
            if before in (b"\x90", b"\xcc", b"\x00", b"\xc3"):
                strict.add(address)
        return strict

    def _heuristic_tail_calls(
        self, image: BinaryImage, disassembly, starts: set[int]
    ) -> set[int]:
        """Treat any jump leaving the current function's region as a tail call.

        No stack-height, calling-convention or reference restrictions: this is
        the unsafe heuristic whose false positives the paper quantifies.
        """
        added: set[int] = set()
        fde_ranges = {fde.pc_begin: (fde.pc_begin, fde.pc_end) for fde in image.fdes}
        for start, function in disassembly.functions.items():
            begin, end = fde_ranges.get(start, (start, function.end))
            for jump in function.jumps:
                target = jump.branch_target
                if target is None or not image.is_executable_address(target):
                    continue
                if begin <= target < end:
                    continue
                if target not in starts:
                    added.add(target)
        return added
