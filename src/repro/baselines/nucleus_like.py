"""NUCLEUS-style detector model.

NUCLEUS is compiler-agnostic: it linearly sweeps the text section, builds an
intra-procedural control-flow graph (calls excluded), groups basic blocks
into weakly-connected components, and reports the target of each direct call
plus the lowest address of each component as function starts (§II-B).
Unresolved jump-table cases fragment into their own components (false
positives) and functions reached only by tail calls collapse into their
caller's component (false negatives).
"""

from __future__ import annotations

import networkx as nx

from repro.baselines.base import BaselineTool
from repro.core.registry import register_detector
from repro.core.context import AnalysisContext, context_for
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage
from repro.x86.disassembler import decode_range
from repro.x86.instruction import Instruction


@register_detector(
    "nucleus",
    order=40,
    comparison=True,
    cet_aware=True,
    description="linear sweep grouped into weakly-connected CFG components",
)
class NucleusLike(BaselineTool):

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)
        instructions = self._linear_sweep(image, context)
        call_targets, components = self._build_cfg(instructions)

        starts: set[int] = set()
        starts |= {t for t in call_targets if image.is_executable_address(t)}
        cet = image.uses_cet
        for component in components:
            block_addresses = [a for a in component if a in instructions]
            if not block_addresses:
                continue
            lowest = min(block_addresses)
            insn = instructions[lowest]
            if insn.is_padding or insn.mnemonic == "(bad)":
                continue
            # On CET binaries a component head that is not an endbr64 landing
            # pad cannot be a function entry (only fallthrough/jump flow
            # reaches it), so it is fragment noise, not a function.
            if cet and insn.mnemonic != "endbr64":
                continue
            starts.add(lowest)
        result.record_stage("cfg", starts)
        return result

    # ------------------------------------------------------------------
    def _linear_sweep(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> dict[int, Instruction]:
        cache = context.decode_cache if context is not None else None
        instructions: dict[int, Instruction] = {}
        for section in image.executable_sections:
            for insn in decode_range(
                section.data, section.address, stop_on_error=False, cache=cache
            ):
                instructions[insn.address] = insn
        return instructions

    def _build_cfg(
        self, instructions: dict[int, Instruction]
    ) -> tuple[set[int], list[set[int]]]:
        graph = nx.Graph()
        call_targets: set[int] = set()
        ordered = sorted(instructions)
        for address in ordered:
            insn = instructions[address]
            if insn.mnemonic == "(bad)" or insn.is_padding:
                continue
            graph.add_node(address)
            if insn.is_call:
                if insn.branch_target is not None:
                    call_targets.add(insn.branch_target)
                if insn.end in instructions:
                    graph.add_edge(address, insn.end)
                continue
            if insn.is_jump:
                target = insn.branch_target
                if target is not None and target in instructions:
                    graph.add_edge(address, target)
                if insn.is_conditional_jump and insn.end in instructions:
                    graph.add_edge(address, insn.end)
                continue
            if insn.is_ret or insn.mnemonic in ("ud2", "hlt"):
                continue
            if insn.end in instructions:
                graph.add_edge(address, insn.end)
        components = [set(c) for c in nx.connected_components(graph)]
        return call_targets, components
