"""ELF-64 constants (the subset needed for x86-64 executables)."""

from __future__ import annotations

ELF_MAGIC = b"\x7fELF"

# e_ident
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1
ELFOSABI_SYSV = 0

# e_type
ET_EXEC = 2
ET_DYN = 3

# e_machine
EM_X86_64 = 62

# Section header types
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOBITS = 8

# Section header flags
SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

# Symbol binding
STB_LOCAL = 0
STB_GLOBAL = 1
STB_WEAK = 2

# Symbol types
STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
STT_SECTION = 3
STT_FILE = 4

# Program header types
PT_LOAD = 1
PT_GNU_EH_FRAME = 0x6474E550

# Program header flags
PF_X = 0x1
PF_W = 0x2
PF_R = 0x4

# Sizes
ELF_HEADER_SIZE = 64
PROGRAM_HEADER_SIZE = 56
SECTION_HEADER_SIZE = 64
SYMBOL_ENTRY_SIZE = 24
