"""Content-addressed artifact store for corpora, results and matrix cells.

See :mod:`repro.store.store` for the on-disk layout.  Typical wiring::

    from repro.store import ArtifactStore
    from repro.synth import build_scenario_matrix_corpora
    from repro.eval import ScenarioMatrix

    store = ArtifactStore("~/.cache/fetch-repro")      # or REPRO_STORE_DIR
    corpora = build_scenario_matrix_corpora(store=store)   # built once
    matrix = ScenarioMatrix(corpora, store=store)          # resumable
    matrix.run()                                           # warm: no detector runs
"""

from repro.store.digest import (
    blob_digest,
    canonical_json,
    options_digest,
    stable_digest,
)
from repro.store.store import (
    STORE_FORMAT,
    ArtifactStore,
    default_store_root,
    digest_of_binary,
    elf_bytes_of,
)

__all__ = [
    "ArtifactStore",
    "STORE_FORMAT",
    "default_store_root",
    "digest_of_binary",
    "elf_bytes_of",
    "blob_digest",
    "canonical_json",
    "options_digest",
    "stable_digest",
]
