"""A small x86-64 emulator for the instruction subset of this library.

The emulator exists to demonstrate exception-handling semantics end to end:
it executes synthetic binaries far enough to build up a realistic call stack
and then traps (on ``ud2``/``hlt``/``syscall``), at which point the
:class:`~repro.unwind.unwinder.StackUnwinder` takes over using only
``.eh_frame`` data — exactly the hand-off that happens between a crashing
program and ``_Unwind_RaiseException`` in §III-B of the paper.

Memory is modelled as a sparse byte dictionary; the stack is just ordinary
memory.  Flags are reduced to the signed comparison result needed by the
conditional jumps the synthetic compiler emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.image import BinaryImage
from repro.x86.disassembler import DecodeError, decode_instruction
from repro.x86.instruction import Instruction
from repro.x86.operands import Imm, Mem
from repro.x86.registers import RBP, RSP, Register

_MASK = (1 << 64) - 1


class EmulatorTrap(Exception):
    """Raised when execution reaches a trapping instruction or an error."""

    def __init__(self, reason: str, state: "MachineState"):
        super().__init__(reason)
        self.reason = reason
        self.state = state


@dataclass
class MachineState:
    """Architectural state of the emulated machine."""

    registers: dict[Register, int] = field(default_factory=dict)
    rip: int = 0
    memory: dict[int, int] = field(default_factory=dict)

    def read_register(self, register: Register) -> int:
        return self.registers.get(register, 0)

    def write_register(self, register: Register, value: int) -> None:
        self.registers[register] = value & _MASK

    def read_memory(self, address: int, size: int) -> int:
        value = 0
        for index in range(size):
            value |= self.memory.get(address + index, 0) << (8 * index)
        return value

    def write_memory(self, address: int, value: int, size: int) -> None:
        for index in range(size):
            self.memory[address + index] = (value >> (8 * index)) & 0xFF


class Emulator:
    """Executes code from a :class:`BinaryImage` starting at its entry point."""

    def __init__(self, image: BinaryImage, *, stack_top: int = 0x7FFF_F000):
        self.image = image
        self.state = MachineState()
        self.state.write_register(RSP, stack_top)
        self.state.write_register(RBP, stack_top)
        self._zero_flag = False
        self._sign_flag = False
        self._carry_flag = False
        #: addresses whose execution should raise a trap (e.g. a simulated
        #: ``throw`` site), checked before executing the instruction there
        self.trap_addresses: set[int] = set()
        #: call stack of (call site, callee) pairs maintained for reference
        self.call_trace: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    def run(self, start: int | None = None, *, max_instructions: int = 100_000) -> MachineState:
        """Run until a trap instruction, a trap address or the budget expires."""
        self.state.rip = start if start is not None else self.image.entry_point
        for _ in range(max_instructions):
            if self.state.rip in self.trap_addresses:
                raise EmulatorTrap("trap address reached", self.state)
            insn = self._fetch(self.state.rip)
            self._execute(insn)
        raise EmulatorTrap("instruction budget exhausted", self.state)

    # ------------------------------------------------------------------
    def _fetch(self, address: int) -> Instruction:
        section = self.image.section_containing(address)
        if section is None or not section.is_executable:
            raise EmulatorTrap(f"jump to non-executable address {address:#x}", self.state)
        try:
            return decode_instruction(section.data, address - section.address, address)
        except DecodeError as exc:
            raise EmulatorTrap(f"invalid instruction: {exc}", self.state) from exc

    def _read_operand(self, insn: Instruction, operand) -> int:
        if isinstance(operand, Register):
            return self.state.read_register(operand)
        if isinstance(operand, Imm):
            return operand.value & _MASK
        if isinstance(operand, Mem):
            return self.state.read_memory(self._effective_address(insn, operand), 8)
        raise EmulatorTrap(f"unsupported operand {operand!r}", self.state)

    def _effective_address(self, insn: Instruction, mem: Mem) -> int:
        if mem.rip_relative:
            return (insn.end + mem.disp) & _MASK
        address = mem.disp
        if mem.base is not None:
            address += self.state.read_register(mem.base)
        if mem.index is not None:
            address += self.state.read_register(mem.index) * mem.scale
        return address & _MASK

    def _load_initial_memory(self, address: int, size: int) -> None:
        section = self.image.section_containing(address)
        if section is None:
            return
        data = section.read(address, size)
        for index, byte in enumerate(data):
            self.state.memory.setdefault(address + index, byte)

    def _read_data(self, address: int, size: int) -> int:
        if not any(address + i in self.state.memory for i in range(size)):
            self._load_initial_memory(address, size)
        return self.state.read_memory(address, size)

    # ------------------------------------------------------------------
    def _execute(self, insn: Instruction) -> None:
        state = self.state
        mnemonic = insn.mnemonic
        next_rip = insn.end

        if mnemonic in ("ud2", "hlt"):
            raise EmulatorTrap(f"{mnemonic} executed", state)
        if mnemonic == "syscall":
            raise EmulatorTrap("syscall executed", state)

        if mnemonic in ("nop", "endbr64"):
            pass
        elif mnemonic == "push":
            value = self._read_operand(insn, insn.operands[0])
            rsp = state.read_register(RSP) - 8
            state.write_register(RSP, rsp)
            state.write_memory(rsp, value, 8)
        elif mnemonic == "pop":
            rsp = state.read_register(RSP)
            state.write_register(insn.operands[0], state.read_memory(rsp, 8))
            state.write_register(RSP, rsp + 8)
        elif mnemonic == "mov":
            dst, src = insn.operands
            value = self._operand_value(insn, src)
            if isinstance(dst, Register):
                state.write_register(dst, value)
            else:
                state.write_memory(self._effective_address(insn, dst), value, 8)
        elif mnemonic == "lea":
            dst, src = insn.operands
            state.write_register(dst, self._effective_address(insn, src))
        elif mnemonic in ("movsxd", "movzx", "movsx"):
            dst, src = insn.operands
            state.write_register(dst, self._operand_value(insn, src))
        elif mnemonic in ("add", "sub", "xor", "and", "or", "imul", "shl", "sar", "shr"):
            self._arithmetic(insn, mnemonic)
        elif mnemonic in ("cmp", "test"):
            self._compare(insn, mnemonic)
        elif mnemonic in ("inc", "dec"):
            dst = insn.operands[0]
            if isinstance(dst, Register):
                delta = 1 if mnemonic == "inc" else -1
                state.write_register(dst, state.read_register(dst) + delta)
        elif mnemonic == "call":
            target = self._branch_target(insn)
            rsp = state.read_register(RSP) - 8
            state.write_register(RSP, rsp)
            state.write_memory(rsp, insn.end, 8)
            self.call_trace.append((insn.address, target))
            next_rip = target
        elif mnemonic == "ret":
            rsp = state.read_register(RSP)
            next_rip = state.read_memory(rsp, 8)
            state.write_register(RSP, rsp + 8)
            if self.call_trace:
                self.call_trace.pop()
        elif mnemonic == "leave":
            rbp = state.read_register(RBP)
            state.write_register(RSP, rbp)
            state.write_register(RBP, state.read_memory(rbp, 8))
            state.write_register(RSP, rbp + 8)
        elif mnemonic == "jmp":
            next_rip = self._branch_target(insn)
        elif insn.is_conditional_jump:
            if self._condition(mnemonic):
                next_rip = self._branch_target(insn)
        else:
            raise EmulatorTrap(f"unsupported instruction {mnemonic}", state)

        state.rip = next_rip

    # ------------------------------------------------------------------
    def _operand_value(self, insn: Instruction, operand) -> int:
        if isinstance(operand, Mem) and not operand.rip_relative:
            address = self._effective_address(insn, operand)
            return self._read_data(address, 8)
        if isinstance(operand, Mem) and operand.rip_relative:
            return self._read_data(self._effective_address(insn, operand), 8)
        return self._read_operand(insn, operand)

    def _branch_target(self, insn: Instruction) -> int:
        operand = insn.operands[0]
        if isinstance(operand, Imm):
            return operand.value & _MASK
        if isinstance(operand, Register):
            return self.state.read_register(operand)
        return self._read_data(self._effective_address(insn, operand), 8)

    def _arithmetic(self, insn: Instruction, mnemonic: str) -> None:
        dst = insn.operands[0]
        value = self._operand_value(insn, insn.operands[1])
        if not isinstance(dst, Register):
            current = self._read_data(self._effective_address(insn, dst), 8)
        else:
            current = self.state.read_register(dst)
        if mnemonic == "add":
            result = current + value
        elif mnemonic == "sub":
            result = current - value
        elif mnemonic == "xor":
            result = current ^ value
        elif mnemonic == "and":
            result = current & value
        elif mnemonic == "or":
            result = current | value
        elif mnemonic == "imul":
            result = current * value
        elif mnemonic == "shl":
            result = current << (value & 63)
        elif mnemonic in ("sar", "shr"):
            result = current >> (value & 63)
        else:  # pragma: no cover - guarded by caller
            raise EmulatorTrap(f"unsupported ALU op {mnemonic}", self.state)
        result &= _MASK
        self._zero_flag = result == 0
        self._sign_flag = bool(result >> 63)
        if isinstance(dst, Register):
            self.state.write_register(dst, result)
        else:
            self.state.write_memory(self._effective_address(insn, dst), result, 8)

    def _compare(self, insn: Instruction, mnemonic: str) -> None:
        left = self._operand_value(insn, insn.operands[0])
        right = self._operand_value(insn, insn.operands[1])
        if mnemonic == "cmp":
            result = (left - right) & _MASK
            self._carry_flag = left < right
        else:  # test
            result = left & right
            self._carry_flag = False
        self._zero_flag = result == 0
        self._sign_flag = bool(result >> 63)

    def _condition(self, mnemonic: str) -> bool:
        zero, sign, carry = self._zero_flag, self._sign_flag, self._carry_flag
        table = {
            "je": zero,
            "jne": not zero,
            "jl": sign,
            "jge": not sign,
            "jle": zero or sign,
            "jg": not zero and not sign,
            "jb": carry,
            "jae": not carry,
            "jbe": carry or zero,
            "ja": not carry and not zero,
            "js": sign,
            "jns": not sign,
            "jo": False,
            "jno": True,
            "jp": False,
            "jnp": True,
        }
        return table.get(mnemonic, False)
