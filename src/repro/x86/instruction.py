"""Decoded / assembled instruction model.

An :class:`Instruction` is a plain value object: mnemonic, operands, the
address it was decoded at (or will be placed at) and its raw encoding.  The
classification helpers (``is_call``, ``is_conditional_jump`` ...) are the
vocabulary used throughout the analysis and detection layers, so they live
here rather than in the semantics module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.x86.operands import Imm, Mem
from repro.x86.registers import Register

#: Conditional jump mnemonics, keyed by condition-code nibble.
CONDITION_CODES = {
    0x0: "jo",
    0x1: "jno",
    0x2: "jb",
    0x3: "jae",
    0x4: "je",
    0x5: "jne",
    0x6: "jbe",
    0x7: "ja",
    0x8: "js",
    0x9: "jns",
    0xA: "jp",
    0xB: "jnp",
    0xC: "jl",
    0xD: "jge",
    0xE: "jle",
    0xF: "jg",
}

CONDITIONAL_JUMPS = frozenset(CONDITION_CODES.values())

#: Mnemonics that never fall through to the next instruction.
_NO_FALLTHROUGH = frozenset({"jmp", "ret", "ud2", "hlt"})

#: Mnemonics treated as padding / alignment filler by compilers.
PADDING_MNEMONICS = frozenset({"nop", "int3"})

Operand = Register | Imm | Mem


@dataclass(frozen=True)
class Instruction:
    """A single decoded or assembled x86-64 instruction."""

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    address: int = 0
    data: bytes = b""
    operand_size: int = 8
    comment: str = field(default="", compare=False)

    @property
    def size(self) -> int:
        """Encoded length in bytes."""
        return len(self.data)

    @cached_property
    def end(self) -> int:
        """Address of the byte following this instruction.

        Cached: instructions are immutable and ``end`` sits on the hottest
        paths of traversal, gap computation and stack-height analysis.
        """
        return self.address + len(self.data)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_call(self) -> bool:
        return self.mnemonic == "call"

    @property
    def is_ret(self) -> bool:
        return self.mnemonic == "ret"

    @property
    def is_unconditional_jump(self) -> bool:
        return self.mnemonic == "jmp"

    @property
    def is_conditional_jump(self) -> bool:
        return self.mnemonic in CONDITIONAL_JUMPS

    @cached_property
    def is_jump(self) -> bool:
        """Any jump (conditional or unconditional), excluding calls."""
        return self.mnemonic == "jmp" or self.mnemonic in CONDITIONAL_JUMPS

    @cached_property
    def is_branch(self) -> bool:
        """Any control transfer: jumps, calls and returns."""
        return self.is_jump or self.mnemonic in ("call", "ret")

    @property
    def is_direct_branch(self) -> bool:
        """A call/jump whose target is an immediate operand."""
        if not (self.is_call or self.is_jump):
            return False
        return bool(self.operands) and isinstance(self.operands[0], Imm)

    @property
    def is_indirect_branch(self) -> bool:
        """A call/jump through a register or memory operand."""
        if not (self.is_call or self.is_jump):
            return False
        return bool(self.operands) and not isinstance(self.operands[0], Imm)

    @property
    def is_nop(self) -> bool:
        return self.mnemonic == "nop" or self.mnemonic == "endbr64"

    @property
    def is_padding(self) -> bool:
        """Whether compilers use this instruction as inter-function filler."""
        return self.mnemonic in PADDING_MNEMONICS

    @property
    def is_terminator(self) -> bool:
        """Whether execution never falls through to the next instruction."""
        return self.mnemonic in _NO_FALLTHROUGH

    @property
    def is_invalid(self) -> bool:
        return self.mnemonic == "(bad)"

    # ------------------------------------------------------------------
    # Targets
    # ------------------------------------------------------------------
    @cached_property
    def branch_target(self) -> int | None:
        """Absolute target of a direct call/jump, else ``None``."""
        if self.is_direct_branch:
            imm = self.operands[0]
            assert isinstance(imm, Imm)
            return imm.value
        return None

    @property
    def memory_operand(self) -> Mem | None:
        """The memory operand of this instruction, if any."""
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    @cached_property
    def rip_target(self) -> int | None:
        """Absolute address referenced through a RIP-relative operand."""
        mem = self.memory_operand
        if mem is not None and mem.rip_relative:
            return mem.absolute_target(self.end)
        return None

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - display helper
        ops = ", ".join(str(op) for op in self.operands)
        text = f"{self.address:#x}: {self.mnemonic}"
        if ops:
            text += f" {ops}"
        return text
