"""Table I — wild binaries: eh_frame presence and FDE-vs-symbol coverage."""

from repro.eval import run_wild_study
from repro.eval.tables import render_table1


def test_table1_wild_binaries(benchmark, wild_corpus, report_writer):
    rows = benchmark.pedantic(run_wild_study, args=(wild_corpus,), rounds=1, iterations=1)
    report_writer("table1_wild", render_table1(rows))

    # Every wild binary carries .eh_frame (the paper's core observation) and
    # FDEs cover essentially all symbols where symbols exist.
    assert all(row.has_eh_frame for row in rows)
    with_symbols = [row for row in rows if row.fde_symbol_percent is not None]
    assert with_symbols
    assert min(row.fde_symbol_percent for row in with_symbols) > 95.0
