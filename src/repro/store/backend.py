"""Versioned on-disk layout behind the artifact store.

:class:`StoreBackend` is the narrow storage interface
:class:`~repro.store.store.ArtifactStore` reads and writes through, so the
store's caching semantics are independent of where bytes live.
:class:`FilesystemBackend` is the shipped implementation, with two layout
versions:

* **v1** (PR 3) — two-character fanout: ``objects/ab/<digest>``,
  ``results/ab/<key>.json``.  256 leaf directories per namespace; fine to
  ~100k artifacts, after which directory entries dominate lookups.
* **v2** (current) — two-level, four-character fanout:
  ``objects/ab/cd/<digest>``, ``results/ab/cd/<key>.json`` — 65 536 leaf
  directories per namespace, sized for millions of artifacts.

The active layout is pinned per store root by a ``layout.json`` marker.
A pre-marker root holding v1 content keeps operating in v1 transparently
(reads *and* writes stay coherent); ``fetch-detect store migrate`` rehomes
every file into v2 and writes the marker.  In v2 mode every read falls
back to the v1 path on a miss, so a partially-migrated store never loses
sight of its own artifacts.

All writes go through :func:`atomic_write_bytes`: the payload is written
to a same-directory temp file, ``fsync``\\ ed, chmod-ed to honour the
process umask (``mkstemp`` files are 0600, which would make multi-user
stores unreadable), atomically renamed over the destination, and the
directory entry is ``fsync``\\ ed — a crash can lose the newest artifact
but can never leave a truncated record behind the rename.
"""

from __future__ import annotations

import abc
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator

from repro.resilience import faults

#: Record namespaces of the store (blobs live in :data:`BLOB_NAMESPACE`).
NAMESPACES = ("corpora", "results", "values", "matrix", "detections")
BLOB_NAMESPACE = "objects"

LAYOUT_V1 = 1
LAYOUT_V2 = 2

_MARKER_NAME = "layout.json"
#: values are pickles; every other namespace stores JSON records
_SUFFIXES = {"values": ".pkl"}


def _record_suffix(namespace: str) -> str:
    return _SUFFIXES.get(namespace, ".json")


def _current_umask() -> int:
    """The process umask, read without the racy ``os.umask`` dance.

    ``/proc/self/status`` exposes it read-only on Linux; the set-and-
    restore fallback is only taken elsewhere (momentarily visible to
    concurrent threads, hence last resort).
    """
    try:
        with open("/proc/self/status") as stream:
            for line in stream:
                if line.startswith("Umask:"):
                    return int(line.split()[1], 8)
    except (OSError, ValueError, IndexError):
        pass
    value = os.umask(0o022)
    os.umask(value)
    return value


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Durably and atomically write ``data`` to ``path``.

    temp write → ``fsync(file)`` → umask-honouring chmod → ``os.replace``
    → best-effort ``fsync(directory)``.  Readers observe the old content
    or the new content, never a torn file — even across a crash.

    Fault site ``store.write``: a ``raise``/``delay`` fault fires before
    anything is written (a clean transient I/O error); a ``torn`` fault
    simulates a crash *mid-write* — a truncated ``.tmp-`` file is left on
    disk (which readers never see: the rename never happened, and
    ``iter_entries`` skips dot-files) and the write fails.
    """
    try:
        faults.fire("store.write", path.name)
    except faults.TornWrite as torn:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temporary = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        with os.fdopen(handle, "wb") as stream:
            stream.write(data[: len(data) // 2])
        raise faults.FaultInjected(str(torn)) from torn
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temporary = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.chmod(temporary, 0o666 & ~_current_umask())
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise
    try:
        directory = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(directory)
    except OSError:
        pass
    finally:
        os.close(directory)


class StoreBackend(abc.ABC):
    """Storage interface of the artifact store.

    Implementations own *where bytes live* (directory trees, an object
    store, a remote cache); the :class:`ArtifactStore` on top owns keying,
    stats, the manifest index and GC policy.  See ``docs/EXTENDING.md``
    for a worked custom-backend recipe.
    """

    root: Path
    #: on-disk layout version the backend writes (reported by ``describe``)
    layout: int

    # -- records --------------------------------------------------------
    @abc.abstractmethod
    def record_path(self, namespace: str, key: str) -> Path:
        """The canonical (write) path of a record."""

    @abc.abstractmethod
    def find_record(self, namespace: str, key: str) -> Path | None:
        """The existing path of a record under any supported layout."""

    @abc.abstractmethod
    def load_record_bytes(self, namespace: str, key: str) -> bytes | None:
        """The record's raw bytes, or ``None`` when absent/unreadable."""

    @abc.abstractmethod
    def save_record_bytes(
        self, namespace: str, key: str, data: bytes
    ) -> tuple[Path, bool]:
        """Write a record; returns ``(path, existed_before)``."""

    # -- blobs ----------------------------------------------------------
    @abc.abstractmethod
    def blob_path(self, digest: str) -> Path:
        """The canonical (write) path of a blob."""

    @abc.abstractmethod
    def find_blob(self, digest: str) -> Path | None:
        """The existing path of a blob under any supported layout."""

    @abc.abstractmethod
    def load_blob(self, digest: str) -> bytes | None:
        """The blob's bytes, or ``None`` when absent/unreadable."""

    @abc.abstractmethod
    def save_blob(self, digest: str, data: bytes) -> tuple[Path, bool]:
        """Write a blob; returns ``(path, existed_before)``."""

    # -- maintenance ----------------------------------------------------
    @abc.abstractmethod
    def delete(self, namespace: str, key: str) -> int:
        """Remove one entry; returns the bytes freed (0 when absent)."""

    @abc.abstractmethod
    def iter_entries(self) -> Iterator[tuple[str, str, Path, int, float]]:
        """Yield ``(namespace, key, path, size_bytes, mtime)`` for every
        stored entry (blobs use :data:`BLOB_NAMESPACE`).  This is the slow
        tree walk — only index rebuilds, migration and legacy fallbacks
        use it; steady-state stats answer from the index."""


class FilesystemBackend(StoreBackend):
    """The default directory-tree backend with v1/v2 sharded fanout."""

    def __init__(self, root: str | os.PathLike, *, layout: int | None = None):
        self.root = Path(root)
        self.layout = self._detect_layout() if layout is None else int(layout)
        if self.layout not in (LAYOUT_V1, LAYOUT_V2):
            raise ValueError(f"unsupported store layout v{self.layout}")
        self._marker_checked = False

    # -- layout ---------------------------------------------------------
    def _detect_layout(self) -> int:
        """Marker wins; marker-less roots with v1 content stay v1."""
        try:
            marker = json.loads((self.root / _MARKER_NAME).read_text())
            return int(marker["layout"])
        except (OSError, ValueError, KeyError, TypeError):
            pass
        for namespace in (BLOB_NAMESPACE, *NAMESPACES):
            if (self.root / namespace).is_dir():
                return LAYOUT_V1
        return LAYOUT_V2

    def _fanout(self, key: str) -> tuple[str, ...]:
        if self.layout >= LAYOUT_V2:
            return (key[:2], key[2:4])
        return (key[:2],)

    def _legacy_record_path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / key[:2] / f"{key}{_record_suffix(namespace)}"

    def _legacy_blob_path(self, digest: str) -> Path:
        return self.root / BLOB_NAMESPACE / digest[:2] / digest

    def _ensure_marker(self) -> None:
        """Pin a v2 root's layout on first write (v1 roots stay marker-less
        until migration, so older readers keep understanding them)."""
        if self._marker_checked or self.layout < LAYOUT_V2:
            return
        marker = self.root / _MARKER_NAME
        if not marker.exists():
            atomic_write_bytes(
                marker,
                (json.dumps({"layout": self.layout}, sort_keys=True) + "\n").encode(),
            )
        self._marker_checked = True

    def write_marker(self) -> None:
        """Force the layout marker out (used after migration)."""
        self._marker_checked = False
        self._ensure_marker()

    # -- records --------------------------------------------------------
    def record_path(self, namespace: str, key: str) -> Path:
        return self.root.joinpath(
            namespace, *self._fanout(key), f"{key}{_record_suffix(namespace)}"
        )

    def find_record(self, namespace: str, key: str) -> Path | None:
        path = self.record_path(namespace, key)
        if path.exists():
            return path
        if self.layout >= LAYOUT_V2:
            legacy = self._legacy_record_path(namespace, key)
            if legacy.exists():
                return legacy
        return None

    def load_record_bytes(self, namespace: str, key: str) -> bytes | None:
        for path in (self.record_path(namespace, key),) + (
            (self._legacy_record_path(namespace, key),)
            if self.layout >= LAYOUT_V2
            else ()
        ):
            try:
                return path.read_bytes()
            except OSError:
                continue
        return None

    def save_record_bytes(
        self, namespace: str, key: str, data: bytes
    ) -> tuple[Path, bool]:
        existed = self.find_record(namespace, key) is not None
        self._ensure_marker()
        path = self.record_path(namespace, key)
        atomic_write_bytes(path, data)
        return path, existed

    # -- blobs ----------------------------------------------------------
    def blob_path(self, digest: str) -> Path:
        return self.root.joinpath(BLOB_NAMESPACE, *self._fanout(digest), digest)

    def find_blob(self, digest: str) -> Path | None:
        path = self.blob_path(digest)
        if path.exists():
            return path
        if self.layout >= LAYOUT_V2:
            legacy = self._legacy_blob_path(digest)
            if legacy.exists():
                return legacy
        return None

    def load_blob(self, digest: str) -> bytes | None:
        for path in (self.blob_path(digest),) + (
            (self._legacy_blob_path(digest),) if self.layout >= LAYOUT_V2 else ()
        ):
            try:
                return path.read_bytes()
            except OSError:
                continue
        return None

    def save_blob(self, digest: str, data: bytes) -> tuple[Path, bool]:
        existing = self.find_blob(digest)
        if existing is not None:
            return existing, True
        self._ensure_marker()
        path = self.blob_path(digest)
        atomic_write_bytes(path, data)
        return path, False

    # -- maintenance ----------------------------------------------------
    def delete(self, namespace: str, key: str) -> int:
        if namespace == BLOB_NAMESPACE:
            path = self.find_blob(key)
        else:
            path = self.find_record(namespace, key)
        if path is None:
            return 0
        try:
            size = path.stat().st_size
            os.unlink(path)
        except OSError:
            return 0
        try:  # prune emptied fanout directories, best effort
            path.parent.rmdir()
        except OSError:
            pass
        return size

    def iter_entries(self) -> Iterator[tuple[str, str, Path, int, float]]:
        for namespace in (BLOB_NAMESPACE, *NAMESPACES):
            directory = self.root / namespace
            if not directory.is_dir():
                continue
            suffix = "" if namespace == BLOB_NAMESPACE else _record_suffix(namespace)
            for parent, _dirs, files in os.walk(directory):
                for name in files:
                    if name.startswith("."):  # in-flight .tmp- files
                        continue
                    if suffix and not name.endswith(suffix):
                        continue
                    key = name[: -len(suffix)] if suffix else name
                    path = Path(parent) / name
                    try:
                        status = path.stat()
                    except OSError:
                        continue
                    yield namespace, key, path, status.st_size, status.st_mtime

    def migrate(self) -> dict[str, int]:
        """Rehome every v1-layout file into v2 and pin the layout marker.

        Keys (and therefore every cache identity) are unchanged — only
        file locations move, via same-filesystem ``os.replace``.  Safe to
        re-run: already-placed files are counted, not touched.  Callers
        hold the store lock; concurrent *readers* stay correct throughout
        because v2 reads fall back to the v1 path.
        """
        previous = self.layout
        self.layout = LAYOUT_V2
        moved = in_place = 0
        for namespace, key, path, _size, _mtime in list(self.iter_entries()):
            if namespace == BLOB_NAMESPACE:
                destination = self.blob_path(key)
            else:
                destination = self.record_path(namespace, key)
            if path == destination:
                in_place += 1
                continue
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            moved += 1
            try:
                path.parent.rmdir()
            except OSError:
                pass
        self.write_marker()
        return {
            "from_layout": previous,
            "to_layout": self.layout,
            "moved": moved,
            "already_placed": in_place,
            "migrated_unix": round(time.time(), 3),
        }
