"""ByteWeight-style detector model.

ByteWeight learns weighted byte-prefix trees from compiler output and flags
every position whose bytes match a learned prefix as a function start.  The
model here uses the same prologue byte signatures as the other pattern-based
tools but applies them over the entire text section at any offset, without
any reachability or validation filter — which is what gives learning-based
approaches both their coverage and their error rates.
"""

from __future__ import annotations

from repro.analysis.prologue import PROLOGUE_PATTERNS, select_prologue_patterns
from repro.baselines.base import BaselineTool
from repro.core.registry import register_detector
from repro.core.context import AnalysisContext, context_for
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@register_detector(
    "byteweight",
    order=90,
    cet_aware=True,
    description="learned byte-prefix signatures over the whole text section",
)
class ByteWeightLike(BaselineTool):

    #: patterns can be extended by "training" (see :meth:`train`)
    def __init__(self, patterns: tuple[bytes, ...] = PROLOGUE_PATTERNS):
        self.patterns = patterns

    def train(self, corpus: list[tuple[BinaryImage, set[int]]], prefix_length: int = 6) -> None:
        """Learn byte-prefix patterns from (image, true starts) pairs."""
        counts: dict[bytes, int] = {}
        for image, starts in corpus:
            for start in starts:
                try:
                    prefix = image.read(start, prefix_length)
                except ValueError:
                    continue
                counts[prefix] = counts.get(prefix, 0) + 1
        learned = tuple(
            prefix for prefix, count in sorted(counts.items(), key=lambda kv: -kv[1]) if count >= 3
        )
        if learned:
            self.patterns = learned[:64]

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)
        # Untrained instances fall back to the scenario-appropriate stock set
        # (endbr64-anchored on CET binaries); trained patterns are used as-is.
        patterns = (
            select_prologue_patterns(image)
            if self.patterns is PROLOGUE_PATTERNS
            else self.patterns
        )
        matches: set[int] = set()
        for positions in context.text_pattern_matches(patterns).values():
            matches.update(positions)
        result.record_stage("signatures", matches)
        return result
