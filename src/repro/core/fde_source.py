"""Function-start extraction from ``.eh_frame`` FDEs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.elf.image import BinaryImage


def extract_fde_starts(image: BinaryImage) -> set[int]:
    """The ``PC Begin`` addresses of all FDEs in the binary (§IV, Q1)."""
    return {fde.pc_begin for fde in image.fdes}


@dataclass
class FdeSymbolCoverage:
    """How well FDEs cover the function symbols of a binary (Tables I/II)."""

    symbol_count: int
    covered_symbols: int

    @property
    def ratio(self) -> float:
        """Fraction of function symbols whose address also has an FDE."""
        if self.symbol_count == 0:
            return 1.0
        return self.covered_symbols / self.symbol_count

    @property
    def percent(self) -> float:
        return 100.0 * self.ratio


def fde_symbol_coverage(image: BinaryImage) -> FdeSymbolCoverage:
    """Compare FDE starts against the binary's code symbols.

    All symbols defined in an executable section are counted, including the
    incompletely-typed symbols of hand-written assembly functions — those are
    precisely the symbols FDEs fail to cover in the paper's Tables I and II.
    """
    fde_starts = extract_fde_starts(image)
    symbols = {
        s.address
        for s in image.symbols
        if s.address and s.section_name is not None and image.is_executable_address(s.address)
    }
    return FdeSymbolCoverage(
        symbol_count=len(symbols),
        covered_symbols=len(symbols & fde_starts),
    )
