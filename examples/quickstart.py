#!/usr/bin/env python3
"""Quickstart: detect function starts in an ELF binary with FETCH.

This example generates a small synthetic x86-64 ELF executable (so the
example is self-contained), writes it to disk, loads it back like any other
binary, and runs the FETCH pipeline on it.  Swap the generated file for any
x86-64 System-V ELF executable with an ``.eh_frame`` section to analyse real
binaries — or use the installed ``fetch-detect`` command line tool.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import BinaryImage, FetchDetector, FetchOptions
from repro.synth import compile_program, plan_program
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.synth.workloads import WorkloadTraits


def build_demo_binary(path: Path) -> set[int]:
    """Compile a synthetic program to ``path`` and return its true starts."""
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    traits = WorkloadTraits(cold_split_multiplier=2.0, has_assembly=True, mean_functions=60)
    plan = plan_program("quickstart", profile, seed=42, traits=traits)
    binary = compile_program(plan)
    path.write_bytes(binary.elf_bytes)
    return binary.ground_truth.function_starts


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="fetch-quickstart-"))
    elf_path = workdir / "demo.elf"
    true_starts = build_demo_binary(elf_path)
    print(f"synthetic binary written to {elf_path} ({elf_path.stat().st_size} bytes)")

    # Load the binary and run the full FETCH pipeline.
    image = BinaryImage.from_file(str(elf_path))
    print(f"loaded {image.name}: {len(image.fdes)} FDEs, "
          f"{len(image.function_symbols)} function symbols")

    detector = FetchDetector(FetchOptions())
    result = detector.detect(image)

    print(f"\nFETCH detected {len(result.function_starts)} function starts")
    for stage, added in result.added_by_stage.items():
        print(f"  stage {stage:10s} contributed {len(added):4d} starts")
    if result.merged_parts:
        print(f"  Algorithm 1 merged {len(result.merged_parts)} non-contiguous part(s)")

    false_positives = result.function_starts - true_starts
    false_negatives = true_starts - result.function_starts
    print(f"\nagainst ground truth: {len(false_positives)} false positives, "
          f"{len(false_negatives)} false negatives out of {len(true_starts)} functions")

    print("\nfirst ten detected starts:")
    for address in sorted(result.function_starts)[:10]:
        marker = "true " if address in true_starts else "FALSE"
        print(f"  {address:#x}  ({marker})")


if __name__ == "__main__":
    main()
