"""Tests for the .eh_frame encoder and parser."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dwarf import cfi
from repro.dwarf import constants as C
from repro.dwarf.encoder import EhFrameBuilder, default_cie_instructions
from repro.dwarf.parser import EhFrameParseError, parse_eh_frame

SECTION_ADDRESS = 0x500000


def build_simple(fdes):
    builder = EhFrameBuilder()
    handle = builder.add_cie()
    for pc_begin, pc_range, instructions in fdes:
        builder.add_fde(handle, pc_begin, pc_range, instructions)
    return builder, builder.build(SECTION_ADDRESS)


def test_empty_section_has_only_terminator():
    builder = EhFrameBuilder()
    builder.add_cie()
    data = builder.build(SECTION_ADDRESS)
    cies, fdes = parse_eh_frame(data, SECTION_ADDRESS)
    assert len(cies) == 1 and fdes == []


def test_cie_fields_roundtrip():
    _, data = build_simple([(0x401000, 0x20, [])])
    cies, _ = parse_eh_frame(data, SECTION_ADDRESS)
    cie = cies[0]
    assert cie.version == 1
    assert cie.augmentation == "zR"
    assert cie.code_alignment == 1
    assert cie.data_alignment == -8
    assert cie.return_address_register == C.DWARF_REG_RA
    assert cie.fde_pointer_encoding == (C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4)
    meaningful = [insn for insn in cie.initial_instructions if insn.name != "nop"]
    assert meaningful == default_cie_instructions()


def test_fde_pc_begin_and_range_roundtrip():
    ranges = [(0x401000, 0x56, []), (0x4012f0, 0x10, []), (0x7fff0000, 0x1234, [])]
    _, data = build_simple(ranges)
    _, fdes = parse_eh_frame(data, SECTION_ADDRESS)
    assert [(f.pc_begin, f.pc_range) for f in fdes] == [(a, r) for a, r, _ in ranges]
    assert fdes[0].pc_end == 0x401056
    assert fdes[0].covers(0x401000) and fdes[0].covers(0x401055)
    assert not fdes[0].covers(0x401056)


def test_fde_instructions_roundtrip():
    program = [
        cfi.advance_loc(1),
        cfi.def_cfa_offset(16),
        cfi.offset(C.DWARF_REG_RBP, -16),
        cfi.advance_loc(4),
        cfi.def_cfa_register(C.DWARF_REG_RBP),
    ]
    _, data = build_simple([(0x401000, 0x40, program)])
    _, fdes = parse_eh_frame(data, SECTION_ADDRESS)
    parsed = [insn for insn in fdes[0].instructions if insn.name != "nop"]
    assert parsed == program


def test_multiple_cies_are_supported():
    builder = EhFrameBuilder()
    first = builder.add_cie()
    second = builder.add_cie(data_alignment=-4)
    builder.add_fde(first, 0x1000, 0x10, [])
    builder.add_fde(second, 0x2000, 0x10, [])
    data = builder.build(SECTION_ADDRESS)
    cies, fdes = parse_eh_frame(data, SECTION_ADDRESS)
    assert len(cies) == 2 and len(fdes) == 2
    assert fdes[0].cie is not fdes[1].cie
    assert fdes[1].cie.data_alignment == -4


def test_fde_count_property():
    builder, _ = build_simple([(0x1000, 1, []), (0x2000, 2, []), (0x3000, 3, [])])
    assert builder.fde_count == 3


def test_entries_are_eight_byte_aligned():
    _, data = build_simple([(0x401000, 0x56, [cfi.advance_loc(3), cfi.def_cfa_offset(16)])])
    # Every entry length field keeps the stream 4-byte aligned and the
    # contents padded to 8; total size must be a multiple of 4.
    assert len(data) % 4 == 0


def test_parser_rejects_fde_with_unknown_cie():
    # An FDE whose CIE pointer points nowhere sensible must be rejected.
    import struct

    bogus = struct.pack("<II", 8, 0xFFFF) + b"\x00" * 4 + struct.pack("<I", 0)
    with pytest.raises(EhFrameParseError):
        parse_eh_frame(bogus, SECTION_ADDRESS)


def test_parser_rejects_truncated_entry():
    import struct

    truncated = struct.pack("<I", 100) + b"\x00" * 8
    with pytest.raises(EhFrameParseError):
        parse_eh_frame(truncated, SECTION_ADDRESS)


def test_eh_frame_hdr_contains_sorted_search_table():
    builder, data = build_simple(
        [(0x403000, 0x10, []), (0x401000, 0x10, []), (0x402000, 0x10, [])]
    )
    hdr_address = 0x4f0000
    header = builder.build_header(hdr_address, SECTION_ADDRESS, data)
    assert header[0] == 1  # version
    count = int.from_bytes(header[8:12], "little")
    assert count == 3
    import struct

    entries = []
    for index in range(count):
        offset = 12 + index * 8
        pc_delta, fde_delta = struct.unpack_from("<ii", header, offset)
        entries.append((hdr_address + pc_delta, hdr_address + fde_delta))
    assert [pc for pc, _ in entries] == [0x401000, 0x402000, 0x403000]
    # Each table entry must point at an FDE within the section.
    for _, fde_address in entries:
        assert SECTION_ADDRESS <= fde_address < SECTION_ADDRESS + len(data)


@given(
    fdes=st.lists(
        st.tuples(
            st.integers(min_value=0x1000, max_value=0x7FFFFFFF),
            st.integers(min_value=1, max_value=0xFFFFF),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50)
def test_arbitrary_fde_sets_roundtrip(fdes):
    builder = EhFrameBuilder()
    handle = builder.add_cie()
    for pc_begin, pc_range in fdes:
        builder.add_fde(handle, pc_begin, pc_range, [cfi.advance_loc(1), cfi.def_cfa_offset(16)])
    data = builder.build(SECTION_ADDRESS)
    _, parsed = parse_eh_frame(data, SECTION_ADDRESS)
    assert [(f.pc_begin, f.pc_range) for f in parsed] == fdes


# ----------------------------------------------------------------------
# Pointer-encoding regressions: indirect application, signed range formats
# ----------------------------------------------------------------------

def build_with_encoding(encoding, fdes):
    builder = EhFrameBuilder()
    handle = builder.add_cie(fde_pointer_encoding=encoding)
    for pc_begin, pc_range in fdes:
        builder.add_fde(handle, pc_begin, pc_range, [])
    return builder.build(SECTION_ADDRESS)


def test_indirect_pointer_encoding_is_rejected_without_memory():
    # DW_EH_PE_indirect (0x80) used to be masked away by `& 0x70`, silently
    # decoding the slot *address* as the pointer.  Without a way to read the
    # slot the parser must refuse, not guess.
    encoding = C.DW_EH_PE_indirect | C.DW_EH_PE_absptr
    data = build_with_encoding(encoding, [(0x600000, 0x40)])
    with pytest.raises(EhFrameParseError, match="indirect"):
        parse_eh_frame(data, SECTION_ADDRESS)


def test_indirect_pointer_encoding_dereferences_with_memory():
    slot_address = 0x600000
    encoding = C.DW_EH_PE_indirect | C.DW_EH_PE_absptr
    data = build_with_encoding(encoding, [(slot_address, 0x40)])

    def deref(address):
        return 0x401000 if address == slot_address else None

    _, fdes = parse_eh_frame(data, SECTION_ADDRESS, deref=deref)
    assert [(f.pc_begin, f.pc_range) for f in fdes] == [(0x401000, 0x40)]


def test_indirect_pointer_to_unmapped_slot_is_rejected():
    encoding = C.DW_EH_PE_indirect | C.DW_EH_PE_absptr
    data = build_with_encoding(encoding, [(0x600000, 0x40)])
    with pytest.raises(EhFrameParseError, match="unmapped"):
        parse_eh_frame(data, SECTION_ADDRESS, deref=lambda address: None)


def test_image_resolves_indirect_personality_through_its_sections():
    # End to end: a BinaryImage hands the parser a dereferencer over its own
    # mapped sections.
    from repro.elf import constants as EC
    from repro.elf.image import BinaryImage
    from repro.elf.structs import ElfFile, Section

    slot_address = 0x600000
    encoding = C.DW_EH_PE_indirect | C.DW_EH_PE_absptr
    data = build_with_encoding(encoding, [(slot_address, 0x40)])
    sections = [
        Section(name=".text", data=b"\x90" * 0x80, address=0x401000,
                flags=EC.SHF_ALLOC | EC.SHF_EXECINSTR),
        Section(name=".data", data=(0x401000).to_bytes(8, "little"),
                address=slot_address, flags=EC.SHF_ALLOC | EC.SHF_WRITE),
        Section(name=".eh_frame", data=data, address=SECTION_ADDRESS,
                flags=EC.SHF_ALLOC),
    ]
    image = BinaryImage(elf=ElfFile(sections=sections, entry_point=0x401000))
    assert [f.pc_begin for f in image.fdes] == [0x401000]


def test_fde_range_of_two_gigabytes_parses_positive():
    # The range is a length: with the sdata4-encoded CIE a range >= 2**31
    # used to decode negative and abort; it must round-trip unsigned.
    big = 0x8000_0000
    data = build_with_encoding(C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4,
                               [(0x401000, big)])
    _, fdes = parse_eh_frame(data, SECTION_ADDRESS)
    assert fdes[0].pc_range == big
    assert fdes[0].pc_end == 0x401000 + big


def test_unsigned_range_read_keeps_small_ranges_byte_identical():
    signed = build_with_encoding(C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4,
                                 [(0x401000, 0x56)])
    _, fdes = parse_eh_frame(signed, SECTION_ADDRESS)
    assert fdes[0].pc_range == 0x56


# ----------------------------------------------------------------------
# Malformed-section smoke tests (run as a CI smoke job)
# ----------------------------------------------------------------------

class TestMalformedEhFrame:
    def test_entry_length_past_section_end(self):
        data = struct.pack("<I", 0x1000) + b"\x00" * 8
        with pytest.raises(EhFrameParseError, match="exceeds"):
            parse_eh_frame(data, SECTION_ADDRESS)

    def test_truncated_mid_fde_rejected(self):
        data = build_simple([(0x401000, 0x20, [])])[1]
        for cut in (len(data) - 3, len(data) // 2):
            with pytest.raises((EhFrameParseError, ValueError, IndexError)):
                parse_eh_frame(data[:cut] + b"\xff" * 3, SECTION_ADDRESS)

    def test_unsupported_pointer_format_rejected(self):
        builder = EhFrameBuilder()
        builder.add_cie()
        data = bytearray(builder.build(SECTION_ADDRESS))
        # Corrupt the CIE's 'R' augmentation byte to an undefined format 0x05.
        index = data.index(bytes([C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4]))
        data[index] = 0x05
        body = build_simple([(0x401000, 0x20, [])])[1]
        # Reuse the valid FDE bytes against the corrupted CIE.
        corrupted = bytes(data[:-4]) + body[len(data) - 4 : ]
        with pytest.raises(EhFrameParseError, match="format"):
            parse_eh_frame(corrupted, SECTION_ADDRESS)

    def test_unsupported_pointer_application_rejected(self):
        encoding = C.DW_EH_PE_textrel | C.DW_EH_PE_sdata4
        builder = EhFrameBuilder()
        handle = builder.add_cie(fde_pointer_encoding=encoding)
        builder.add_fde(handle, 0x401000, 0x20, [])
        data = builder.build(SECTION_ADDRESS)
        with pytest.raises(EhFrameParseError, match="application"):
            parse_eh_frame(data, SECTION_ADDRESS)

    def test_64_bit_dwarf_marker_rejected(self):
        data = struct.pack("<I", 0xFFFFFFFF) + b"\x00" * 16
        with pytest.raises(EhFrameParseError, match="64-bit"):
            parse_eh_frame(data, SECTION_ADDRESS)
