"""Result structures shared by the disassembly-based analyses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instruction import Instruction


@dataclass
class DisassembledFunction:
    """The instructions discovered for one detected function.

    ``instructions`` maps instruction address to the decoded instruction for
    every address reached by intra-procedural control flow from ``start``.
    """

    start: int
    instructions: dict[int, Instruction] = field(default_factory=dict)
    #: addresses of direct call targets found inside this function
    call_targets: set[int] = field(default_factory=set)
    #: jump instructions (conditional or unconditional) inside this function
    jumps: list[Instruction] = field(default_factory=list)
    #: ``(target, call-site address)`` for every direct call, recorded by the
    #: traversal so reference collection never re-walks all instructions
    call_sites: list[tuple[int, int]] = field(
        default_factory=list, repr=False, compare=False
    )
    #: whether exploration hit a decoding error
    had_decode_error: bool = False
    #: lazily-computed constants, see :attr:`code_constants`
    _code_constants: set[int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def code_constants(self) -> set[int]:
        """Address-sized constants in this function's decoded instructions.

        Branch-target immediates are control-flow references, not
        address-taking constants; they are accounted for separately.  The set
        is computed once per function — the instruction set is fixed after
        exploration — and shared by every consumer (do not mutate it).
        """
        constants = self._code_constants
        if constants is None:
            constants = set()
            add = constants.add
            update = constants.update
            for insn in self.instructions.values():
                c = insn._consts
                if c is not None:
                    if c.__class__ is int:
                        add(c)
                    else:
                        update(c)
            self._code_constants = constants
        return constants

    @property
    def addresses(self) -> set[int]:
        return set(self.instructions)

    @property
    def end(self) -> int:
        """One past the highest byte claimed by this function's instructions."""
        if not self.instructions:
            return self.start
        return max(insn.end for insn in self.instructions.values())

    def contains(self, address: int) -> bool:
        return address in self.instructions

    def covers_address(self, address: int) -> bool:
        """Whether ``address`` falls inside any instruction of this function."""
        return self.start <= address < self.end

    @property
    def sorted_instructions(self) -> list[Instruction]:
        return [self.instructions[a] for a in sorted(self.instructions)]


@dataclass
class DisassemblyResult:
    """Aggregate result of (recursive) disassembly over a binary."""

    functions: dict[int, DisassembledFunction] = field(default_factory=dict)
    #: every decoded instruction, keyed by address (across all functions)
    instructions: dict[int, Instruction] = field(default_factory=dict)
    #: all direct call targets observed
    call_targets: set[int] = field(default_factory=set)
    #: constants (immediates / RIP-relative targets) seen in decoded code
    code_constants: set[int] = field(default_factory=set)
    #: memo for :meth:`covered_ranges`, valid while no instruction is added
    _coverage_cache: tuple[int, list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False
    )
    #: memo for :func:`repro.analysis.xrefs.collect_potential_pointers`,
    #: keyed by the (instruction count, constant count) state of this result
    #: — both only ever grow, so equal counts mean identical content
    _pointer_scan_cache: tuple[tuple[int, int], frozenset[int]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def function_starts(self) -> set[int]:
        return set(self.functions)

    def covered_ranges(self) -> list[tuple[int, int]]:
        """Sorted, merged ``[start, end)`` byte ranges of all instructions.

        Instructions are only ever *added* to a result, so the memo is keyed
        by the instruction count; gap computation between pipeline stages
        then reuses the merge instead of rescanning every instruction.
        """
        cached = self._coverage_cache
        if cached is not None and cached[0] == len(self.instructions):
            return cached[1]
        # Sort plain int keys (address order is near-sorted after traversal,
        # which Timsort exploits) and merge in one pass; building and sorting
        # (address, end) tuples instead measurably dominates gap computation.
        instructions = self.instructions
        merged: list[tuple[int, int]] = []
        append = merged.append
        run_start = run_end = None
        for address in sorted(instructions):
            if run_end is None or address > run_end:
                if run_end is not None:
                    append((run_start, run_end))
                run_start = address
                run_end = instructions[address].end
            else:
                end = instructions[address].end
                if end > run_end:
                    run_end = end
        if run_end is not None:
            append((run_start, run_end))
        self._coverage_cache = (len(self.instructions), merged)
        return merged

    def is_instruction_start(self, address: int) -> bool:
        return address in self.instructions

    def is_inside_instruction(self, address: int) -> bool:
        """True when ``address`` falls strictly inside a decoded instruction."""
        if address in self.instructions:
            return False
        for delta in range(1, 15):
            insn = self.instructions.get(address - delta)
            if insn is not None and insn.end > address:
                return True
        return False

    def function_containing(self, address: int) -> DisassembledFunction | None:
        """The detected function whose instruction set includes ``address``."""
        for function in self.functions.values():
            if address in function.instructions:
                return function
        return None
