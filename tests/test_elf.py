"""Tests for the ELF writer, reader and the BinaryImage facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elf import (
    BinaryImage,
    ElfFile,
    Section,
    Symbol,
    read_elf,
    write_elf,
    write_elf_file,
    read_elf_file,
)
from repro.elf import constants as C
from repro.elf.reader import ElfParseError


def make_elf(symbols=None, sections=None, entry=0x401000):
    text = Section(
        name=".text",
        data=b"\x55\x48\x89\xe5\xc3" + b"\x90" * 11,
        address=0x401000,
        flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
        align=16,
    )
    data = Section(
        name=".data", data=b"\xaa" * 32, address=0x403000, flags=C.SHF_ALLOC | C.SHF_WRITE
    )
    rodata = Section(name=".rodata", data=b"hello\x00", address=0x402000, flags=C.SHF_ALLOC)
    return ElfFile(
        sections=sections or [text, rodata, data],
        symbols=symbols if symbols is not None else [Symbol("main", 0x401000, 5)],
        entry_point=entry,
    )


def test_header_magic_and_machine():
    blob = write_elf(make_elf())
    assert blob[:4] == b"\x7fELF"
    assert blob[4] == C.ELFCLASS64
    parsed = read_elf(blob)
    assert parsed.elf_type == C.ET_EXEC
    assert parsed.entry_point == 0x401000


def test_sections_roundtrip_content_and_flags():
    parsed = read_elf(write_elf(make_elf()))
    text = parsed.section(".text")
    assert text is not None
    assert text.data.startswith(b"\x55\x48\x89\xe5\xc3")
    assert text.is_executable and text.is_allocated and not text.is_writable
    data = parsed.section(".data")
    assert data.is_writable and not data.is_executable
    assert parsed.section(".rodata").data == b"hello\x00"


def test_symbols_roundtrip_with_binding_and_type():
    symbols = [
        Symbol("main", 0x401000, 5, sym_type=C.STT_FUNC, binding=C.STB_GLOBAL),
        Symbol("helper.cold", 0x401005, 3, sym_type=C.STT_FUNC, binding=C.STB_LOCAL),
        Symbol("raw_asm", 0x401008, 2, sym_type=C.STT_NOTYPE, binding=C.STB_GLOBAL),
        Symbol("table", 0x403000, 8, sym_type=C.STT_OBJECT, section_name=".data"),
    ]
    parsed = read_elf(write_elf(make_elf(symbols=symbols)))
    by_name = {s.name: s for s in parsed.symbols}
    assert by_name["main"].sym_type == C.STT_FUNC
    assert by_name["main"].binding == C.STB_GLOBAL
    assert by_name["helper.cold"].binding == C.STB_LOCAL
    assert by_name["raw_asm"].sym_type == C.STT_NOTYPE
    assert by_name["table"].section_name == ".data"
    assert by_name["table"].address == 0x403000


def test_empty_symbol_table_roundtrip():
    parsed = read_elf(write_elf(make_elf(symbols=[])))
    assert parsed.symbols == []


def test_reader_rejects_non_elf_input():
    with pytest.raises(ElfParseError):
        read_elf(b"MZ not an elf file" + b"\x00" * 64)


def test_reader_rejects_wrong_machine():
    blob = bytearray(write_elf(make_elf()))
    blob[18] = 0x03  # EM_386
    with pytest.raises(ElfParseError):
        read_elf(bytes(blob))


def test_file_roundtrip(tmp_path):
    path = tmp_path / "demo.elf"
    write_elf_file(make_elf(), str(path))
    parsed = read_elf_file(str(path))
    assert parsed.section(".text").address == 0x401000


def test_section_read_by_virtual_address():
    section = make_elf().section(".text")
    assert section.read(0x401000, 5) == b"\x55\x48\x89\xe5\xc3"
    with pytest.raises(ValueError):
        section.read(0x400fff, 1)


def test_section_containing():
    elf = make_elf()
    assert elf.section_containing(0x401004).name == ".text"
    assert elf.section_containing(0x403010).name == ".data"
    assert elf.section_containing(0x500000) is None


# ----------------------------------------------------------------------
# BinaryImage facade
# ----------------------------------------------------------------------

def test_image_text_and_permissions():
    image = BinaryImage.from_bytes(write_elf(make_elf()), "demo")
    assert image.text.address == 0x401000
    assert image.is_executable_address(0x401002)
    assert not image.is_executable_address(0x403000)
    assert image.read(0x402000, 5) == b"hello"
    with pytest.raises(ValueError):
        image.read(0x900000, 1)


def test_image_function_symbols_are_sorted_and_typed():
    symbols = [
        Symbol("b", 0x401004, 1),
        Symbol("a", 0x401000, 4),
        Symbol("untyped", 0x401008, 1, sym_type=C.STT_NOTYPE),
    ]
    image = BinaryImage.from_bytes(write_elf(make_elf(symbols=symbols)), "demo")
    assert [s.name for s in image.function_symbols] == ["a", "b"]
    assert image.has_symbols


def test_image_without_eh_frame():
    image = BinaryImage.from_bytes(write_elf(make_elf()), "demo")
    assert not image.has_eh_frame
    assert image.fdes == []
    assert image.fde_covering(0x401000) is None


def test_image_data_sections_exclude_eh_frame(rich_binary):
    names = {s.name for s in rich_binary.image.data_sections}
    assert ".rodata" in names and ".data" in names
    assert ".eh_frame" not in names and ".text" not in names


def test_image_eh_frame_parsing_on_synthetic_binary(rich_binary):
    image = rich_binary.image
    assert image.has_eh_frame
    assert len(image.fdes) > 50
    start = min(f.pc_begin for f in image.fdes)
    assert image.fde_covering(start) is not None


def test_synthetic_elf_bytes_reload_identically(rich_binary):
    reloaded = BinaryImage.from_bytes(rich_binary.elf_bytes, "reloaded")
    assert reloaded.text.data == rich_binary.image.text.data
    assert len(reloaded.fdes) == len(rich_binary.image.fdes)
    assert {s.address for s in reloaded.function_symbols} == {
        s.address for s in rich_binary.image.function_symbols
    }


@given(
    symbols=st.lists(
        st.tuples(
            st.text(alphabet="abcdefgh_", min_size=1, max_size=12),
            st.integers(min_value=0x401000, max_value=0x40100F),
            st.integers(min_value=0, max_value=64),
        ),
        max_size=10,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=50)
def test_symbol_table_roundtrip_property(symbols):
    elf = make_elf(symbols=[Symbol(n, a, s) for n, a, s in symbols])
    parsed = read_elf(write_elf(elf))
    assert {(s.name, s.address, s.size) for s in parsed.symbols} == set(symbols)
