"""Scenario matrix — every detector over every binary scenario.

Evaluates all ten registered matrix detectors (the eight Table III tools,
ByteWeight and FETCH) over the scenario corpora — vanilla, PIE-with-PLT,
CET, ICF, padded entries, stripped-without-eh_frame — and records the full
FP/FN matrix in ``BENCH_scenario_matrix.json``.

The matrix runs against the shared artifact store: a cold run computes and
persists every cell; any later run (in-process or a fresh invocation over
the same store) reloads completed cells and performs **zero** detector
invocations.  The benchmark asserts exactly that with an immediate resumed
re-run, and the BENCH record carries the cache hit/miss counts under
``store`` so warm-vs-cold history is auditable.

With ``REPRO_BENCH_POOLS`` unset (or ``1``) the benchmark also measures the
``--workers`` process-pool backend against the GIL-bound thread pool on the
Table III tool comparison: results must be identical across serial,
threaded and process evaluation, and the relative timings land in the same
BENCH record.  Set ``REPRO_BENCH_POOLS=0`` to skip the (deliberately
uncached) pool timing section — the warm-cache CI job does.
"""

import os
import statistics
import time
from pathlib import Path

from repro.eval import CorpusEvaluator, ScenarioMatrix, run_tool_comparison
from repro.eval.tables import render_scenario_matrix

BENCH_DIRECTORY = Path(__file__).resolve().parent.parent

_POOL_SIZE = 2
_ROUNDS = 3


def test_scenario_matrix(
    benchmark, scenario_corpora, selfbuilt_corpus_small, report_writer, bench_jobs, artifact_store
):
    matrix = ScenarioMatrix(
        scenario_corpora, jobs=bench_jobs, bench_dir=BENCH_DIRECTORY, store=artifact_store
    )

    cells = benchmark.pedantic(matrix.run, rounds=1, iterations=1)

    # Every (scenario x detector) cell is populated with ground-truth metrics.
    assert set(cells) == set(scenario_corpora)
    for scenario, row in cells.items():
        assert len(row) == 10, f"{scenario}: expected all ten detectors"
        for tool, summary in row.items():
            assert summary["binaries"] == len(scenario_corpora[scenario]), (scenario, tool)
            assert summary["functions"] > 0

    # FETCH's EH-based detection stays within noise of the best tool on
    # every scenario that carries .eh_frame (a couple of stray errors are
    # tolerated at small corpus scales).
    for scenario in ("vanilla", "cet", "icf", "padded"):
        row = cells[scenario]
        fetch = row["fetch"]
        fetch_error = fetch["false_positives"] + fetch["false_negatives"]
        tolerance = 2 + 0.01 * fetch["functions"]
        for tool, summary in row.items():
            if tool == "fetch":
                continue
            other_error = summary["false_positives"] + summary["false_negatives"]
            assert fetch_error <= other_error + tolerance, (scenario, tool)
    # Without .eh_frame the FDE seed is gone; the entry-point fallback still
    # recovers the call-reachable functions (unlike the FDE-seeded models).
    noeh = cells["stripped-noeh"]
    assert noeh["fetch"]["false_negatives"] <= noeh["ghidra"]["false_negatives"]

    # -- resumable evaluation: a warm run does zero detector work ---------
    extra = {}
    if artifact_store is not None:
        start = time.perf_counter()
        warm = ScenarioMatrix(scenario_corpora, jobs=bench_jobs, store=artifact_store)
        warm_cells = warm.run()
        warm_seconds = time.perf_counter() - start
        assert warm_cells == cells, "resumed matrix changed the cells"
        assert warm.detector_invocations == 0, (
            "warm scenario-matrix run re-ran detectors "
            f"({warm.detector_invocations} invocations)"
        )
        extra["warm_rerun_seconds"] = round(warm_seconds, 3)
        extra["warm_rerun_detector_invocations"] = warm.detector_invocations

    # -- thread pool vs process pool on the Table III comparison ----------
    # Timing section: intentionally uncached (a result cache would turn the
    # pool comparison into a cache benchmark).  REPRO_BENCH_POOLS=0 skips it.
    if os.environ.get("REPRO_BENCH_POOLS", "1") != "0":
        corpus = selfbuilt_corpus_small

        def timed(make_evaluator):
            times = []
            results = None
            for _ in range(_ROUNDS):
                evaluator = make_evaluator()
                try:
                    start = time.perf_counter()
                    results = run_tool_comparison(corpus, evaluator=evaluator)
                    times.append(time.perf_counter() - start)
                finally:
                    evaluator.close()
            return results, statistics.median(times)

        serial_results, serial_s = timed(lambda: CorpusEvaluator(corpus))
        thread_results, thread_s = timed(lambda: CorpusEvaluator(corpus, jobs=_POOL_SIZE))
        process_results, process_s = timed(lambda: CorpusEvaluator(corpus, workers=_POOL_SIZE))

        assert thread_results == serial_results, "thread pool changed Table III results"
        assert process_results == serial_results, "process pool changed Table III results"

        speedup_over_threads = thread_s / max(process_s, 1e-9)
        extra.update(
            {
                "table3_serial_seconds": round(serial_s, 3),
                f"table3_thread_pool_jobs{_POOL_SIZE}_seconds": round(thread_s, 3),
                f"table3_process_pool_workers{_POOL_SIZE}_seconds": round(process_s, 3),
                "process_speedup_over_thread_pool": round(speedup_over_threads, 3),
                "pool_size": _POOL_SIZE,
                # Interpretation aid: with one core the process pool can only
                # tie the thread pool; the gap widens with available CPUs.
                "cpu_count": os.cpu_count(),
            }
        )

    matrix.write_bench(extra=extra)

    report_writer("scenario_matrix", render_scenario_matrix(cells))
