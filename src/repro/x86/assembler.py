"""x86-64 instruction encoder.

The :class:`Assembler` produces raw machine-code bytes for the instruction
subset used by the synthetic compiler (:mod:`repro.synth`).  All encodings are
genuine x86-64 encodings (REX prefixes, ModRM/SIB, displacement and immediate
widths), so the output can be decoded by any off-the-shelf disassembler as
well as by :mod:`repro.x86.disassembler`.

Relative branch targets are expressed as *relative displacements from the end
of the instruction*, matching the hardware semantics; the layout engine in
the synthetic compiler performs the target arithmetic.
"""

from __future__ import annotations

import struct

from repro.x86.operands import Mem
from repro.x86.registers import Register

_CC_NUMBERS = {
    "o": 0x0,
    "no": 0x1,
    "b": 0x2,
    "ae": 0x3,
    "e": 0x4,
    "ne": 0x5,
    "be": 0x6,
    "a": 0x7,
    "s": 0x8,
    "ns": 0x9,
    "p": 0xA,
    "np": 0xB,
    "l": 0xC,
    "ge": 0xD,
    "le": 0xE,
    "g": 0xF,
}

_NOP_SEQUENCES = {
    1: b"\x90",
    2: b"\x66\x90",
    3: b"\x0f\x1f\x00",
    4: b"\x0f\x1f\x40\x00",
    5: b"\x0f\x1f\x44\x00\x00",
    6: b"\x66\x0f\x1f\x44\x00\x00",
    7: b"\x0f\x1f\x80\x00\x00\x00\x00",
    8: b"\x0f\x1f\x84\x00\x00\x00\x00\x00",
    9: b"\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
}


class EncodingError(ValueError):
    """Raised when an operand combination cannot be encoded."""


def _i8(value: int) -> bytes:
    return struct.pack("<b", value)


def _i32(value: int) -> bytes:
    return struct.pack("<i", value)


def _u32(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)


def _i64(value: int) -> bytes:
    return struct.pack("<q", value)


def _fits_i8(value: int) -> bool:
    return -128 <= value <= 127


def _fits_i32(value: int) -> bool:
    return -(2**31) <= value < 2**31


def _rex(w: int, r: int, x: int, b: int) -> int:
    return 0x40 | (w << 3) | (r << 2) | (x << 1) | b


def _encode_modrm(
    reg_field: int,
    rm: Register | Mem,
    *,
    rex_w: bool,
    opcode: bytes,
    extra_prefix: bytes = b"",
    immediate: bytes = b"",
) -> bytes:
    """Encode ``prefix + REX + opcode + ModRM [+ SIB] [+ disp] [+ imm]``.

    ``reg_field`` is either the /r register number or the /digit opcode
    extension.  ``rm`` is the r/m operand (register or memory).
    """
    rex_r = (reg_field >> 3) & 1
    reg_low = reg_field & 0b111

    if isinstance(rm, Register):
        rex_b = 1 if rm.needs_rex else 0
        rex_x = 0
        modrm = (0b11 << 6) | (reg_low << 3) | rm.low_bits
        body = bytes([modrm])
    else:
        body, rex_x, rex_b = _encode_mem(reg_low, rm)

    prefix = b""
    if rex_w or rex_r or rex_x or rex_b:
        prefix = bytes([_rex(1 if rex_w else 0, rex_r, rex_x, rex_b)])
    return extra_prefix + prefix + opcode + body + immediate


def _encode_mem(reg_low: int, mem: Mem) -> tuple[bytes, int, int]:
    """Encode the ModRM/SIB/displacement bytes for a memory operand.

    Returns ``(encoded_bytes, rex_x, rex_b)``.
    """
    if mem.rip_relative:
        modrm = (0b00 << 6) | (reg_low << 3) | 0b101
        return bytes([modrm]) + _i32(mem.disp), 0, 0

    base, index, scale, disp = mem.base, mem.index, mem.scale, mem.disp
    rex_x = 1 if (index is not None and index.needs_rex) else 0
    rex_b = 1 if (base is not None and base.needs_rex) else 0

    if index is not None and index.low_bits == 0b100 and not index.needs_rex:
        raise EncodingError("rsp cannot be used as an index register")

    needs_sib = index is not None or base is None or base.low_bits == 0b100

    if base is None:
        # Absolute or index-only addressing: SIB with base=101, mod=00, disp32.
        sib_index = index.low_bits if index is not None else 0b100
        sib = (_scale_bits(scale) << 6) | (sib_index << 3) | 0b101
        modrm = (0b00 << 6) | (reg_low << 3) | 0b100
        return bytes([modrm, sib]) + _i32(disp), rex_x, 0

    # Choose the displacement width.  mod=00 with base rbp/r13 would mean
    # "disp32 only", so those bases always carry at least a disp8.
    if disp == 0 and base.low_bits != 0b101:
        mod, disp_bytes = 0b00, b""
    elif _fits_i8(disp):
        mod, disp_bytes = 0b01, _i8(disp)
    else:
        mod, disp_bytes = 0b10, _i32(disp)

    if needs_sib:
        sib_index = index.low_bits if index is not None else 0b100
        sib = (_scale_bits(scale) << 6) | (sib_index << 3) | base.low_bits
        modrm = (mod << 6) | (reg_low << 3) | 0b100
        return bytes([modrm, sib]) + disp_bytes, rex_x, rex_b

    modrm = (mod << 6) | (reg_low << 3) | base.low_bits
    return bytes([modrm]) + disp_bytes, rex_x, rex_b


def _scale_bits(scale: int) -> int:
    return {1: 0, 2: 1, 4: 2, 8: 3}[scale]


class Assembler:
    """Stateless encoder: every method returns the instruction's bytes."""

    # ------------------------------------------------------------------
    # Stack
    # ------------------------------------------------------------------
    def push(self, reg: Register) -> bytes:
        prefix = b"\x41" if reg.needs_rex else b""
        return prefix + bytes([0x50 + reg.low_bits])

    def pop(self, reg: Register) -> bytes:
        prefix = b"\x41" if reg.needs_rex else b""
        return prefix + bytes([0x58 + reg.low_bits])

    def leave(self) -> bytes:
        return b"\xc9"

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def mov_ri(self, reg: Register, value: int) -> bytes:
        """``mov reg64, imm`` — sign-extended imm32 when possible, else movabs."""
        if _fits_i32(value):
            return _encode_modrm(0, reg, rex_w=True, opcode=b"\xc7", immediate=_i32(value))
        prefix = _rex(1, 0, 0, 1 if reg.needs_rex else 0)
        return bytes([prefix, 0xB8 + reg.low_bits]) + _i64(value)

    def mov_ri32(self, reg: Register, value: int) -> bytes:
        """``mov reg32, imm32`` (zero-extends into the 64-bit register)."""
        prefix = b"\x41" if reg.needs_rex else b""
        return prefix + bytes([0xB8 + reg.low_bits]) + _u32(value)

    def mov_rr(self, dst: Register, src: Register) -> bytes:
        return _encode_modrm(src.number, dst, rex_w=True, opcode=b"\x89")

    def mov_load(self, dst: Register, mem: Mem) -> bytes:
        """``mov reg64, [mem]``."""
        return _encode_modrm(dst.number, mem, rex_w=True, opcode=b"\x8b")

    def mov_store(self, mem: Mem, src: Register) -> bytes:
        """``mov [mem], reg64``."""
        return _encode_modrm(src.number, mem, rex_w=True, opcode=b"\x89")

    def lea(self, dst: Register, mem: Mem) -> bytes:
        if not isinstance(mem, Mem):
            raise EncodingError("lea requires a memory operand")
        return _encode_modrm(dst.number, mem, rex_w=True, opcode=b"\x8d")

    def movsxd(self, dst: Register, src: Register) -> bytes:
        """``movsxd dst64, src32``."""
        return _encode_modrm(dst.number, src, rex_w=True, opcode=b"\x63")

    def movsxd_load(self, dst: Register, mem: Mem) -> bytes:
        """``movsxd dst64, dword [mem]`` — typical jump-table entry load."""
        return _encode_modrm(dst.number, mem, rex_w=True, opcode=b"\x63")

    # ------------------------------------------------------------------
    # Arithmetic / logic
    # ------------------------------------------------------------------
    def _group1_ri(self, ext: int, reg: Register, value: int) -> bytes:
        if _fits_i8(value):
            return _encode_modrm(ext, reg, rex_w=True, opcode=b"\x83", immediate=_i8(value))
        if not _fits_i32(value):
            raise EncodingError(f"immediate does not fit in 32 bits: {value:#x}")
        return _encode_modrm(ext, reg, rex_w=True, opcode=b"\x81", immediate=_i32(value))

    def add_ri(self, reg: Register, value: int) -> bytes:
        return self._group1_ri(0, reg, value)

    def or_ri(self, reg: Register, value: int) -> bytes:
        return self._group1_ri(1, reg, value)

    def and_ri(self, reg: Register, value: int) -> bytes:
        return self._group1_ri(4, reg, value)

    def sub_ri(self, reg: Register, value: int) -> bytes:
        return self._group1_ri(5, reg, value)

    def cmp_ri(self, reg: Register, value: int) -> bytes:
        return self._group1_ri(7, reg, value)

    def add_rr(self, dst: Register, src: Register) -> bytes:
        return _encode_modrm(src.number, dst, rex_w=True, opcode=b"\x01")

    def sub_rr(self, dst: Register, src: Register) -> bytes:
        return _encode_modrm(src.number, dst, rex_w=True, opcode=b"\x29")

    def xor_rr(self, dst: Register, src: Register) -> bytes:
        return _encode_modrm(src.number, dst, rex_w=True, opcode=b"\x31")

    def xor_rr32(self, dst: Register, src: Register) -> bytes:
        """``xor dst32, src32`` — the canonical register-zeroing idiom."""
        return _encode_modrm(src.number, dst, rex_w=False, opcode=b"\x31")

    def cmp_rr(self, a: Register, b: Register) -> bytes:
        return _encode_modrm(b.number, a, rex_w=True, opcode=b"\x39")

    def test_rr(self, a: Register, b: Register) -> bytes:
        return _encode_modrm(b.number, a, rex_w=True, opcode=b"\x85")

    def imul_rr(self, dst: Register, src: Register) -> bytes:
        return _encode_modrm(dst.number, src, rex_w=True, opcode=b"\x0f\xaf")

    def shl_ri(self, reg: Register, amount: int) -> bytes:
        return _encode_modrm(4, reg, rex_w=True, opcode=b"\xc1", immediate=_i8(amount))

    def sar_ri(self, reg: Register, amount: int) -> bytes:
        return _encode_modrm(7, reg, rex_w=True, opcode=b"\xc1", immediate=_i8(amount))

    # ------------------------------------------------------------------
    # Control transfer
    # ------------------------------------------------------------------
    def call_rel32(self, rel: int) -> bytes:
        return b"\xe8" + _i32(rel)

    def call_reg(self, reg: Register) -> bytes:
        return _encode_modrm(2, reg, rex_w=False, opcode=b"\xff")

    def call_mem(self, mem: Mem) -> bytes:
        return _encode_modrm(2, mem, rex_w=False, opcode=b"\xff")

    def jmp_rel32(self, rel: int) -> bytes:
        return b"\xe9" + _i32(rel)

    def jmp_rel8(self, rel: int) -> bytes:
        return b"\xeb" + _i8(rel)

    def jmp_reg(self, reg: Register) -> bytes:
        return _encode_modrm(4, reg, rex_w=False, opcode=b"\xff")

    def jmp_mem(self, mem: Mem) -> bytes:
        return _encode_modrm(4, mem, rex_w=False, opcode=b"\xff")

    def jcc_rel32(self, cc: str, rel: int) -> bytes:
        return bytes([0x0F, 0x80 + _CC_NUMBERS[cc]]) + _i32(rel)

    def jcc_rel8(self, cc: str, rel: int) -> bytes:
        return bytes([0x70 + _CC_NUMBERS[cc]]) + _i8(rel)

    def ret(self) -> bytes:
        return b"\xc3"

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def nop(self, length: int = 1) -> bytes:
        """A padding sequence of exactly ``length`` bytes of NOPs."""
        if length <= 0:
            return b""
        out = b""
        remaining = length
        while remaining > 0:
            chunk = min(remaining, 9)
            out += _NOP_SEQUENCES[chunk]
            remaining -= chunk
        return out

    def int3_padding(self, length: int) -> bytes:
        return b"\xcc" * length

    def endbr64(self) -> bytes:
        return b"\xf3\x0f\x1e\xfa"

    def syscall(self) -> bytes:
        return b"\x0f\x05"

    def ud2(self) -> bytes:
        return b"\x0f\x0b"

    def hlt(self) -> bytes:
        return b"\xf4"
