"""Lowering of program plans to ELF binaries.

The compiler performs the back-end work a real toolchain would: code
generation for every function (via :mod:`repro.synth.funcgen`), layout of hot
parts, data-in-text blobs and the cold region, relocation resolution,
emission of ``.rodata``/``.data`` objects, ``.eh_frame``/``.eh_frame_hdr``
construction, symbol table generation and ground-truth recording.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dwarf import cfi as cfi_mod
from repro.dwarf.cfi import CfiInstruction
from repro.dwarf.encoder import EhFrameBuilder, default_cie_instructions
from repro.elf import constants as EC
from repro.elf.image import BinaryImage
from repro.elf.structs import ElfFile, Section, Symbol
from repro.synth.funcgen import (
    DataObject,
    FunctionCode,
    Part,
    PointerTo,
    Reloc,
    generate_function,
)
from repro.synth.groundtruth import FunctionInfo, GroundTruth
from repro.synth.plan import ProgramPlan
from repro.x86.assembler import Assembler
from repro.x86.operands import Mem

_ASM = Assembler()

_PAGE = 0x1000


@dataclass
class SyntheticBinary:
    """A compiled synthetic binary plus its ground truth."""

    name: str
    image: BinaryImage
    ground_truth: GroundTruth
    plan: ProgramPlan
    elf_bytes: bytes = b""

    @property
    def function_count(self) -> int:
        return self.ground_truth.function_count


@dataclass
class _PlacedPart:
    part: Part
    address: int
    function: FunctionCode


#: Size of one PLT entry (header and stubs alike), as on real x86-64.
_PLT_ENTRY_SIZE = 16


@dataclass
class _PltLayout:
    """Addresses assigned to the lazy-binding PLT of a PIE plan."""

    address: int  # PLT0 (the common resolver header)
    stubs: list[tuple[str, int]]  # (external name, stub address)

    @property
    def end(self) -> int:
        return self.address + _PLT_ENTRY_SIZE * (len(self.stubs) + 1)


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) & ~(alignment - 1)


def compile_program(plan: ProgramPlan, *, keep_elf_bytes: bool = True) -> SyntheticBinary:
    """Compile ``plan`` into an ELF image with ground truth."""
    rng = random.Random(f"codegen:{plan.name}")
    codes = [generate_function(function_plan, rng) for function_plan in plan.functions]

    placed, text_data, labels, text_end = _layout_text(plan, codes, rng)

    # PLT stub addresses must be known before data layout (callers relocate
    # against them) but their *bytes* reference .got.plt slots, so the PLT is
    # planned here and rendered after the data sections are placed.
    plt_layout = _plan_plt(plan, text_end, labels)
    code_end = plt_layout.end if plt_layout is not None else text_end

    rodata_section, data_section, labels = _layout_data(plan, codes, labels, code_end)
    text_section = Section(
        name=".text",
        data=_resolve_text(plan, placed, text_data, labels),
        address=plan.text_address,
        flags=EC.SHF_ALLOC | EC.SHF_EXECINSTR,
        align=16,
    )

    sections = [text_section, rodata_section, data_section]
    last_data_section = data_section
    if plt_layout is not None:
        plt_section, got_section = _render_plt(plt_layout, data_section)
        sections.insert(1, plt_section)
        sections.append(got_section)
        last_data_section = got_section
    if plan.emit_eh_frame:
        sections.extend(_build_eh_frame(plan, placed, last_data_section))

    symbols = _build_symbols(plan, placed, labels)
    entry = labels.get("_start", labels.get("main", plan.text_address))
    elf = ElfFile(
        sections=sections,
        symbols=symbols,
        entry_point=entry,
        elf_type=EC.ET_DYN if plan.pie else EC.ET_EXEC,
    )
    elf_bytes = b""
    if keep_elf_bytes:
        from repro.elf.writer import write_elf

        elf_bytes = write_elf(elf)

    ground_truth = _build_ground_truth(plan, placed, plt_layout)
    image = BinaryImage(elf=elf, name=plan.name)
    return SyntheticBinary(
        name=plan.name,
        image=image,
        ground_truth=ground_truth,
        plan=plan,
        elf_bytes=elf_bytes,
    )


# ----------------------------------------------------------------------
# Text layout
# ----------------------------------------------------------------------

def _layout_text(
    plan: ProgramPlan, codes: list[FunctionCode], rng: random.Random
) -> tuple[list[_PlacedPart], list[tuple[int, bytes]], dict[str, int], int]:
    """Assign addresses to every part, blob and label.

    Returns the placed parts, the fixed filler/blob bytes keyed by address,
    the global label map and the end address of .text.
    """
    labels: dict[str, int] = {}
    placed: list[_PlacedPart] = []
    filler: list[tuple[int, bytes]] = []
    cursor = plan.text_address

    use_int3_padding = plan.profile.compiler.value == "clang"
    blobs = list(plan.data_in_text)
    blob_interval = max(1, len(codes) // max(len(blobs), 1)) if blobs else 0

    def pad_to(target: int) -> None:
        nonlocal cursor
        if target > cursor:
            padding = _ASM.int3_padding(target - cursor) if use_int3_padding else _ASM.nop(
                target - cursor
            )
            filler.append((cursor, padding))
            cursor = target

    cold_parts: list[tuple[Part, FunctionCode]] = []
    for index, code in enumerate(codes):
        aligned = _align(cursor, code.hot.alignment)
        pad_to(aligned)
        _place_part(code.hot, code, aligned, placed, labels)
        cursor = aligned + code.hot.size
        if code.cold is not None:
            cold_parts.append((code.cold, code))

        if blobs and blob_interval and index % blob_interval == blob_interval - 1:
            blob = blobs.pop(0)
            aligned = _align(cursor, 8)
            pad_to(aligned)
            filler.append((aligned, blob))
            cursor = aligned + len(blob)

    # Remaining blobs and then the cold region (".text.unlikely" analogue).
    for blob in blobs:
        aligned = _align(cursor, 8)
        pad_to(aligned)
        filler.append((aligned, blob))
        cursor = aligned + len(blob)

    cold_base = _align(cursor, 16)
    pad_to(cold_base)
    for cold, code in cold_parts:
        aligned = _align(cursor, max(cold.alignment, 1))
        pad_to(aligned)
        _place_part(cold, code, aligned, placed, labels)
        cursor = aligned + cold.size

    end = _align(cursor, 16)
    pad_to(end)
    return placed, filler, labels, end


def _place_part(
    part: Part,
    code: FunctionCode,
    address: int,
    placed: list[_PlacedPart],
    labels: dict[str, int],
) -> None:
    placed.append(_PlacedPart(part=part, address=address, function=code))
    labels[part.name] = address
    if not part.is_cold:
        # Identical-code folding: every alias name resolves to this body.
        for alias in code.plan.icf_aliases:
            labels[alias] = address
    for label, offset in part.labels.items():
        labels[label] = address + offset


def _resolve_text(
    plan: ProgramPlan,
    placed: list[_PlacedPart],
    filler: list[tuple[int, bytes]],
    labels: dict[str, int],
) -> bytes:
    """Resolve relocations and produce the final .text contents."""
    pieces: list[tuple[int, bytes]] = list(filler)
    for placement in placed:
        pieces.append((placement.address, _resolve_part(placement, labels)))

    pieces.sort(key=lambda item: item[0])
    out = bytearray()
    for address, data in pieces:
        offset = address - plan.text_address
        if offset < len(out):
            raise ValueError(f"text layout overlap at {address:#x}")
        out.extend(b"\x00" * (offset - len(out)))
        out.extend(data)
    return bytes(out)


def _resolve_part(placement: _PlacedPart, labels: dict[str, int]) -> bytes:
    out = bytearray()
    for item in placement.part.items:
        if isinstance(item, (bytes, bytearray)):
            out.extend(item)
            continue
        assert isinstance(item, Reloc)
        address = placement.address + len(out)
        encoded = _encode_reloc(item, address, labels)
        if len(encoded) != item.size:
            raise ValueError(
                f"relocation {item.kind}->{item.target} encoded to {len(encoded)} bytes, "
                f"expected {item.size}"
            )
        out.extend(encoded)
    if len(out) != placement.part.size:
        raise ValueError(
            f"part {placement.part.name}: size mismatch {len(out)} != {placement.part.size}"
        )
    return bytes(out)


def _encode_reloc(reloc: Reloc, address: int, labels: dict[str, int]) -> bytes:
    try:
        target = labels[reloc.target]
    except KeyError as exc:
        raise KeyError(f"unresolved relocation target {reloc.target!r}") from exc

    if reloc.kind == "call":
        return _ASM.call_rel32(target - (address + 5))
    if reloc.kind == "jmp":
        return _ASM.jmp_rel32(target - (address + 5))
    if reloc.kind == "jcc":
        return _ASM.jcc_rel32(reloc.cc, target - (address + 6))
    if reloc.kind == "lea":
        return _ASM.lea(reloc.reg, Mem(rip_relative=True, disp=target - (address + 7)))
    if reloc.kind == "mov_load_rip":
        return _ASM.mov_load(reloc.reg, Mem(rip_relative=True, disp=target - (address + 7)))
    if reloc.kind == "call_mem_rip":
        return _ASM.call_mem(Mem(rip_relative=True, disp=target - (address + 6)))
    if reloc.kind == "jmp_mem_rip":
        return _ASM.jmp_mem(Mem(rip_relative=True, disp=target - (address + 6)))
    if reloc.kind == "mov_imm_addr":
        return _ASM.mov_ri32(reloc.reg, target)
    raise ValueError(f"unknown relocation kind {reloc.kind}")


# ----------------------------------------------------------------------
# PLT / GOT (PIE scenario)
# ----------------------------------------------------------------------

def _plan_plt(plan: ProgramPlan, text_end: int, labels: dict[str, int]) -> _PltLayout | None:
    """Assign PLT entry addresses and register the ``<name>@plt`` labels."""
    if not plan.plt_stubs:
        return None
    address = _align(text_end + 0x10, 16)
    stubs: list[tuple[str, int]] = []
    for index, name in enumerate(plan.plt_stubs):
        stub = address + _PLT_ENTRY_SIZE * (index + 1)
        labels[f"{name}@plt"] = stub
        stubs.append((name, stub))
    return _PltLayout(address=address, stubs=stubs)


def _render_plt(layout: _PltLayout, data_section: Section) -> tuple[Section, Section]:
    """Render the ``.plt`` and ``.got.plt`` sections of a PIE binary.

    Classic lazy-binding layout: PLT0 pushes the link-map slot and jumps to
    the resolver slot; each stub jumps through its ``.got.plt`` slot, which
    initially points back at the stub's own ``push index`` instruction
    (``stub + 6``) — a pointer into the *middle* of executable code, exactly
    the kind of data-section value pointer-sweeping detectors must not
    mistake for a function start.
    """
    got_address = _align(data_section.end_address + 0x100, 8)
    reserved = 3  # got[0..2]: link map / resolver slots, zero here

    plt = bytearray()
    plt0 = layout.address
    # PLT0: push qword [rip -> got+8]; jmp qword [rip -> got+16]; 4-byte nop
    plt += b"\xff\x35" + _i32(got_address + 8 - (plt0 + 6))
    plt += b"\xff\x25" + _i32(got_address + 16 - (plt0 + 12))
    plt += b"\x0f\x1f\x40\x00"

    got = bytearray(b"\x00" * (8 * reserved))
    for index, (_name, stub) in enumerate(layout.stubs):
        slot = got_address + 8 * (reserved + index)
        plt += b"\xff\x25" + _i32(slot - (stub + 6))  # jmp qword [rip -> slot]
        plt += b"\x68" + _i32(index)                  # push reloc-index
        plt += b"\xe9" + _i32(plt0 - (stub + 16))     # jmp PLT0
        got += (stub + 6).to_bytes(8, "little")       # lazy: back to the push

    plt_section = Section(
        name=".plt",
        data=bytes(plt),
        address=layout.address,
        flags=EC.SHF_ALLOC | EC.SHF_EXECINSTR,
        align=16,
    )
    got_section = Section(
        name=".got.plt",
        data=bytes(got),
        address=got_address,
        flags=EC.SHF_ALLOC | EC.SHF_WRITE,
        align=8,
    )
    return plt_section, got_section


def _i32(value: int) -> bytes:
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


# ----------------------------------------------------------------------
# Data sections
# ----------------------------------------------------------------------

def _layout_data(
    plan: ProgramPlan, codes: list[FunctionCode], labels: dict[str, int], text_end: int
) -> tuple[Section, Section, dict[str, int]]:
    rodata_address = _align(text_end + _PAGE, _PAGE)

    rodata_objects: list[DataObject] = []
    data_objects: list[DataObject] = []
    for code in codes:
        for obj in code.data_objects:
            (rodata_objects if obj.section == ".rodata" else data_objects).append(obj)

    # Function-pointer slots live in .data (writable globals).
    for slot, target in plan.data_pointers.items():
        data_objects.append(DataObject(symbol=slot, items=[PointerTo(target)], section=".data"))

    # Some read-only strings to give the data sections realistic content.
    strings = [f"{plan.name}:message:{index}\x00".encode() for index in range(8)]
    rodata_objects.append(DataObject(symbol=f"{plan.name}.strings", items=strings))

    rodata_layout, rodata_size = _place_objects(rodata_objects, rodata_address, labels)
    data_address = _align(rodata_address + rodata_size + 0x100, _PAGE)
    data_layout, data_size = _place_objects(data_objects, data_address, labels)

    rodata = Section(
        name=".rodata",
        data=_render_objects(rodata_layout, rodata_address, rodata_size, labels),
        address=rodata_address,
        flags=EC.SHF_ALLOC,
        align=16,
    )
    data = Section(
        name=".data",
        data=_render_objects(data_layout, data_address, data_size, labels),
        address=data_address,
        flags=EC.SHF_ALLOC | EC.SHF_WRITE,
        align=16,
    )
    return rodata, data, labels


def _place_objects(
    objects: list[DataObject], base: int, labels: dict[str, int]
) -> tuple[list[tuple[int, DataObject]], int]:
    layout: list[tuple[int, DataObject]] = []
    cursor = base
    for obj in objects:
        cursor = _align(cursor, 8)
        labels[obj.symbol] = cursor
        layout.append((cursor, obj))
        cursor += obj.size
    return layout, cursor - base


def _render_objects(
    layout: list[tuple[int, DataObject]], base: int, size: int, labels: dict[str, int]
) -> bytes:
    out = bytearray(size)
    for address, obj in layout:
        cursor = address - base
        for item in obj.items:
            if isinstance(item, PointerTo):
                value = labels[item.target]
                out[cursor : cursor + 8] = value.to_bytes(8, "little")
                cursor += 8
            else:
                out[cursor : cursor + len(item)] = item
                cursor += len(item)
    return bytes(out)


# ----------------------------------------------------------------------
# eh_frame
# ----------------------------------------------------------------------

def _build_eh_frame(
    plan: ProgramPlan, placed: list[_PlacedPart], data_section: Section
) -> list[Section]:
    builder = EhFrameBuilder()
    cie = builder.add_cie(initial_instructions=default_cie_instructions())

    for placement in sorted(placed, key=lambda p: p.address):
        part = placement.part
        if not part.has_fde:
            continue
        instructions: list[CfiInstruction] = list(part.initial_cfi)
        instructions.extend(_cfi_with_advances(part))
        builder.add_fde(
            cie,
            placement.address + part.bad_fde_offset,
            part.size,
            instructions,
        )

    eh_frame_address = _align(data_section.end_address + 0x100, 16)
    eh_frame_data = builder.build(eh_frame_address)
    hdr_address = _align(eh_frame_address + len(eh_frame_data) + 8, 16)
    hdr_data = builder.build_header(hdr_address, eh_frame_address, eh_frame_data)

    return [
        Section(
            name=".eh_frame",
            data=eh_frame_data,
            address=eh_frame_address,
            flags=EC.SHF_ALLOC,
            align=8,
        ),
        Section(
            name=".eh_frame_hdr",
            data=hdr_data,
            address=hdr_address,
            flags=EC.SHF_ALLOC,
            align=4,
        ),
    ]


def _cfi_with_advances(part: Part) -> list[CfiInstruction]:
    """Convert (offset, instruction) pairs into an advance_loc-based program."""
    instructions: list[CfiInstruction] = []
    location = 0
    for offset, instruction in part.cfi:
        if offset > location:
            instructions.append(cfi_mod.advance_loc(offset - location))
            location = offset
        instructions.append(instruction)
    return instructions


# ----------------------------------------------------------------------
# Symbols & ground truth
# ----------------------------------------------------------------------

def _build_symbols(
    plan: ProgramPlan, placed: list[_PlacedPart], labels: dict[str, int]
) -> list[Symbol]:
    if plan.stripped:
        return []
    symbols: list[Symbol] = []
    for placement in placed:
        part = placement.part
        if not part.has_symbol:
            continue
        symbols.append(
            Symbol(
                name=part.name,
                address=placement.address,
                size=part.size,
                sym_type=EC.STT_FUNC if part.symbol_type == "func" else EC.STT_NOTYPE,
                binding=EC.STB_LOCAL if part.is_cold else EC.STB_GLOBAL,
                section_name=".text",
            )
        )
        if not part.is_cold:
            # ICF keeps every folded symbol; they all share one address.
            for alias in placement.function.plan.icf_aliases:
                symbols.append(
                    Symbol(
                        name=alias,
                        address=placement.address,
                        size=part.size,
                        sym_type=EC.STT_FUNC,
                        binding=EC.STB_GLOBAL,
                        section_name=".text",
                    )
                )
    return symbols


def _build_ground_truth(
    plan: ProgramPlan,
    placed: list[_PlacedPart],
    plt_layout: _PltLayout | None = None,
) -> GroundTruth:
    truth = GroundTruth(name=plan.name, scenario=plan.scenario)
    hot_by_function: dict[str, _PlacedPart] = {}
    cold_by_function: dict[str, list[int]] = {}
    for placement in placed:
        function_name = placement.function.plan.name
        if placement.part.is_cold:
            cold_by_function.setdefault(function_name, []).append(placement.address)
        else:
            hot_by_function[function_name] = placement

    for function_plan in plan.functions:
        placement = hot_by_function[function_plan.name]
        truth.functions.append(
            FunctionInfo(
                name=function_plan.name,
                address=placement.address,
                size=placement.part.size,
                kind=function_plan.kind,
                reachable_via=function_plan.reachable_via,
                has_fde=function_plan.has_fde and plan.emit_eh_frame,
                has_symbol=function_plan.has_symbol and not plan.stripped,
                frame=function_plan.frame,
                is_noreturn=function_plan.is_noreturn,
                cold_part_addresses=cold_by_function.get(function_plan.name, []),
                violates_callconv=function_plan.violates_callconv,
                bad_fde_offset=function_plan.bad_fde_offset,
                entry_padding=function_plan.entry_padding,
                folded_aliases=list(function_plan.icf_aliases),
            )
        )

    if plt_layout is not None:
        # PLT entries are genuine code the linker synthesises: the header is
        # reached only by the stubs' closing jumps, each stub by direct calls.
        truth.functions.append(
            FunctionInfo(
                name=".plt",
                address=plt_layout.address,
                size=_PLT_ENTRY_SIZE,
                kind="plt",
                reachable_via="tailcall",
                has_fde=False,
                has_symbol=False,
            )
        )
        for name, stub in plt_layout.stubs:
            truth.functions.append(
                FunctionInfo(
                    name=f"{name}@plt",
                    address=stub,
                    size=_PLT_ENTRY_SIZE,
                    kind="plt",
                    reachable_via="call",
                    has_fde=False,
                    has_symbol=False,
                )
            )
    return truth
