"""Evaluation of CFI programs into per-PC unwind rows.

The FETCH tail-call detector (§V-B of the paper) deliberately reads stack
heights from call-frame information instead of running its own static
analysis.  This module materialises an FDE's CFI program into a row table
(one row per PC range) from which the stack height at any covered address can
be looked up, and implements the paper's "complete stack height information"
check: the CFA must always be expressed as ``rsp + offset`` with the canonical
initial offset of 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dwarf import constants as C
from repro.dwarf.structs import FdeRecord


@dataclass
class CfaRow:
    """Unwind rules valid for addresses in ``[start, end)``.

    ``cfa_register``/``cfa_offset`` are ``None`` when the CFA is defined by a
    DWARF expression (which the conservative consumers treat as unknown).
    """

    start: int
    end: int
    cfa_register: int | None
    cfa_offset: int | None
    register_offsets: dict[int, int] = field(default_factory=dict)

    @property
    def stack_height(self) -> int | None:
        """Bytes pushed since function entry, derived from the CFA rule.

        On x86-64 the CFA is the value of ``rsp`` just before the ``call``
        into this function, so when the CFA is ``rsp + offset`` the current
        stack height is ``offset - 8`` (the 8 accounts for the pushed return
        address).  Returns ``None`` for frame-pointer-based or
        expression-based CFA rules.
        """
        if self.cfa_register == C.DWARF_REG_RSP and self.cfa_offset is not None:
            return self.cfa_offset - 8
        return None


@dataclass
class CfaTable:
    """The evaluated row table of a single FDE."""

    fde: FdeRecord
    rows: list[CfaRow]
    uses_expression: bool = False

    def row_at(self, address: int) -> CfaRow | None:
        """The row covering ``address``, or ``None`` if outside the FDE."""
        for row in self.rows:
            if row.start <= address < row.end:
                return row
        return None

    def stack_height_at(self, address: int) -> int | None:
        """Stack height at ``address`` (bytes pushed since entry), if known."""
        row = self.row_at(address)
        if row is None:
            return None
        return row.stack_height

    @property
    def has_complete_stack_height(self) -> bool:
        """The paper's conservativeness check (§V-B).

        True when (i) every row's CFA is ``rsp``-relative with a known offset
        and (ii) the first row starts from the canonical ``rsp + 8``.
        """
        if not self.rows or self.uses_expression:
            return False
        first = self.rows[0]
        if first.cfa_register != C.DWARF_REG_RSP or first.cfa_offset != 8:
            return False
        return all(
            row.cfa_register == C.DWARF_REG_RSP and row.cfa_offset is not None
            for row in self.rows
        )

    def saved_registers_at(self, address: int) -> dict[int, int]:
        """DWARF register number -> CFA-relative save slot at ``address``."""
        row = self.row_at(address)
        return dict(row.register_offsets) if row is not None else {}


@dataclass
class _State:
    cfa_register: int | None = None
    cfa_offset: int | None = None
    register_offsets: dict[int, int] = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(self.cfa_register, self.cfa_offset, dict(self.register_offsets))


def build_cfa_table(fde: FdeRecord) -> CfaTable:
    """Evaluate a FDE's CFI program (with its CIE prologue) into rows."""
    state = _State()
    uses_expression = False

    # CIE initial instructions establish the entry row.
    for insn in fde.cie.initial_instructions:
        uses_expression |= _apply(insn, state, [])

    rows: list[CfaRow] = []
    saved_states: list[_State] = []
    initial_state = state.copy()
    location = fde.pc_begin

    for insn in fde.instructions:
        if insn.name == "advance_loc":
            delta = insn.operands[0]
            rows.append(_snapshot(state, location, location + delta))
            location += delta
        elif insn.name == "restore":
            register = insn.operands[0]
            if register in initial_state.register_offsets:
                state.register_offsets[register] = initial_state.register_offsets[register]
            else:
                state.register_offsets.pop(register, None)
        elif insn.name == "restore_state":
            if saved_states:
                restored = saved_states.pop()
                state.cfa_register = restored.cfa_register
                state.cfa_offset = restored.cfa_offset
                state.register_offsets = dict(restored.register_offsets)
        elif insn.name == "remember_state":
            saved_states.append(state.copy())
        else:
            uses_expression |= _apply(insn, state, saved_states)

    rows.append(_snapshot(state, location, fde.pc_end))
    # Collapse empty ranges that can appear when advance_loc reaches pc_end.
    rows = [row for row in rows if row.end > row.start]
    return CfaTable(fde=fde, rows=rows, uses_expression=uses_expression)


def _apply(insn, state: _State, saved_states: list[_State]) -> bool:
    """Apply a non-location CFI instruction to ``state``.

    Returns True when the instruction makes the CFA expression-based.
    """
    name = insn.name
    if name == "def_cfa":
        state.cfa_register, state.cfa_offset = insn.operands
    elif name == "def_cfa_register":
        state.cfa_register = insn.operands[0]
    elif name == "def_cfa_offset":
        state.cfa_offset = insn.operands[0]
    elif name == "def_cfa_expression":
        state.cfa_register = None
        state.cfa_offset = None
        return True
    elif name == "offset":
        register, cfa_offset = insn.operands
        state.register_offsets[register] = cfa_offset
    elif name == "expression":
        register = insn.operands[0]
        state.register_offsets.pop(register, None)
        return True
    elif name in ("undefined", "same_value"):
        state.register_offsets.pop(insn.operands[0], None)
    elif name in ("nop", "gnu_args_size", "register"):
        pass
    return False


def _snapshot(state: _State, start: int, end: int) -> CfaRow:
    return CfaRow(
        start=start,
        end=end,
        cfa_register=state.cfa_register,
        cfa_offset=state.cfa_offset,
        register_offsets=dict(state.register_offsets),
    )
