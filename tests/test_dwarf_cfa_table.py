"""Tests for CFI evaluation into per-PC rows and stack heights."""

from repro.dwarf import cfi
from repro.dwarf import constants as C
from repro.dwarf.cfa_table import build_cfa_table
from repro.dwarf.encoder import EhFrameBuilder
from repro.dwarf.parser import parse_eh_frame

SECTION = 0x500000
FUNC = 0x4010B0


def make_fde(instructions, pc_range=0x56, initial=None):
    builder = EhFrameBuilder()
    handle = builder.add_cie(initial_instructions=initial)
    builder.add_fde(handle, FUNC, pc_range, instructions)
    data = builder.build(SECTION)
    _, fdes = parse_eh_frame(data, SECTION)
    return fdes[0]


def figure4_fde():
    """The FDE of the paper's Figure 4 (push rbp / push rbx / sub rsp, 8)."""
    return make_fde(
        [
            cfi.advance_loc(1), cfi.def_cfa_offset(16), cfi.offset(6, -16),
            cfi.advance_loc(12), cfi.def_cfa_offset(24), cfi.offset(3, -24),
            cfi.advance_loc(11), cfi.def_cfa_offset(32),
            cfi.advance_loc(29), cfi.def_cfa_offset(24),
            cfi.advance_loc(1), cfi.def_cfa_offset(16),
            cfi.advance_loc(1), cfi.def_cfa_offset(8),
        ]
    )


def test_figure4_rows_and_heights():
    table = build_cfa_table(figure4_fde())
    # Entry: CFA = rsp + 8, stack height 0.
    assert table.stack_height_at(FUNC) == 0
    # After push rbp (offset 1): CFA = rsp + 16.
    assert table.stack_height_at(FUNC + 1) == 8
    # After push rbx (offset 13): CFA = rsp + 24.
    assert table.stack_height_at(FUNC + 0x0D) == 16
    # After sub rsp, 8 (offset 24): CFA = rsp + 32.
    assert table.stack_height_at(FUNC + 0x18) == 24
    # After the epilogue the height is back to 0 at the ret.
    assert table.stack_height_at(FUNC + 0x37) == 0
    assert table.has_complete_stack_height


def test_register_save_slots_follow_figure4():
    table = build_cfa_table(figure4_fde())
    saved = table.saved_registers_at(FUNC + 0x20)
    assert saved[C.DWARF_REG_RA] == -8
    assert saved[6] == -16  # rbp at CFA-16
    assert saved[3] == -24  # rbx at CFA-24


def test_rows_are_contiguous_and_cover_the_range():
    table = build_cfa_table(figure4_fde())
    rows = table.rows
    assert rows[0].start == FUNC
    assert rows[-1].end == FUNC + 0x56
    for previous, current in zip(rows, rows[1:]):
        assert previous.end == current.start


def test_outside_addresses_have_no_row():
    table = build_cfa_table(figure4_fde())
    assert table.row_at(FUNC - 1) is None
    assert table.row_at(FUNC + 0x56) is None
    assert table.stack_height_at(FUNC - 1) is None


def test_frame_pointer_functions_are_incomplete():
    fde = make_fde(
        [
            cfi.advance_loc(1), cfi.def_cfa_offset(16), cfi.offset(6, -16),
            cfi.advance_loc(3), cfi.def_cfa_register(C.DWARF_REG_RBP),
        ]
    )
    table = build_cfa_table(fde)
    assert not table.has_complete_stack_height
    assert table.stack_height_at(FUNC) == 0
    assert table.stack_height_at(FUNC + 5) is None


def test_expression_based_cfa_is_incomplete():
    fde = make_fde([cfi.def_cfa_expression(b"\x77\x08")])
    table = build_cfa_table(fde)
    assert table.uses_expression
    assert not table.has_complete_stack_height


def test_cold_part_initial_offset_is_not_canonical():
    # A cold-part FDE starts at the parent's current stack depth, so its
    # first row is rsp+K with K != 8 and the completeness check fails.
    fde = make_fde([cfi.def_cfa_offset(40)])
    table = build_cfa_table(fde)
    assert table.stack_height_at(FUNC) == 32
    assert not table.has_complete_stack_height


def test_remember_restore_state():
    fde = make_fde(
        [
            cfi.advance_loc(4), cfi.def_cfa_offset(24),
            cfi.remember_state(),
            cfi.advance_loc(4), cfi.def_cfa_offset(48),
            cfi.advance_loc(4), cfi.restore_state(),
            cfi.advance_loc(4), cfi.def_cfa_offset(8),
        ]
    )
    table = build_cfa_table(fde)
    assert table.stack_height_at(FUNC + 5) == 16
    assert table.stack_height_at(FUNC + 9) == 40
    # restore_state brings back the remembered 24-byte CFA offset.
    assert table.stack_height_at(FUNC + 13) == 16


def test_restore_register_rule():
    fde = make_fde(
        [
            cfi.advance_loc(2), cfi.offset(3, -24),
            cfi.advance_loc(2), cfi.restore(3),
        ]
    )
    table = build_cfa_table(fde)
    assert 3 in table.saved_registers_at(FUNC + 2)
    assert 3 not in table.saved_registers_at(FUNC + 5)


def test_synthetic_binary_cfa_tables_match_generated_frames(rich_binary):
    """Every rsp-framed generated function has complete stack-height CFI and
    every rbp-framed one does not."""
    image = rich_binary.image
    checked = 0
    for info in rich_binary.ground_truth.functions:
        if not info.has_fde or info.bad_fde_offset:
            continue
        fde = image.fde_covering(info.address)
        if fde is None or fde.pc_begin != info.address:
            continue
        table = build_cfa_table(fde)
        if info.kind in ("thunk", "terminate"):
            continue
        if info.frame == "rsp":
            assert table.has_complete_stack_height, info.name
            assert table.stack_height_at(info.address) == 0
        else:
            assert not table.has_complete_stack_height, info.name
        checked += 1
    assert checked > 20
