"""Table II — self-built programs: FDE coverage of code symbols per project."""

from repro.eval import run_selfbuilt_fde_study
from repro.eval.tables import render_table2


def test_table2_selfbuilt_projects(benchmark, selfbuilt_corpus, report_writer):
    rows = benchmark.pedantic(
        run_selfbuilt_fde_study, args=(selfbuilt_corpus,), rounds=1, iterations=1
    )
    report_writer("table2_selfbuilt", render_table2(rows))

    assert all(row.has_eh_frame for row in rows)
    average = sum(row.fde_symbol_percent for row in rows) / len(rows)
    # Paper: 99.87 % on average; projects with hand-written assembly dip below 100.
    assert average > 98.0
    assert any(row.fde_symbol_percent < 100.0 for row in rows)
