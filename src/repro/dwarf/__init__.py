"""DWARF call-frame information (``.eh_frame``) substrate.

This package implements the parts of the DWARF / Linux Standard Base
exception-handling format that matter for function detection:

* LEB128 primitives (:mod:`repro.dwarf.leb128`),
* the CFI instruction set (:mod:`repro.dwarf.cfi`),
* CIE/FDE record structures (:mod:`repro.dwarf.structs`),
* an ``.eh_frame`` / ``.eh_frame_hdr`` encoder (:mod:`repro.dwarf.encoder`),
* an ``.eh_frame`` parser (:mod:`repro.dwarf.parser`),
* a CFI evaluator that materialises unwind rows and per-PC stack heights
  (:mod:`repro.dwarf.cfa_table`).
"""

from repro.dwarf.cfi import CfiInstruction
from repro.dwarf.structs import CieRecord, FdeRecord
from repro.dwarf.encoder import EhFrameBuilder, FdeSpec
from repro.dwarf.parser import EhFrameParseError, parse_eh_frame
from repro.dwarf.cfa_table import CfaRow, CfaTable, build_cfa_table

__all__ = [
    "CfiInstruction",
    "CieRecord",
    "FdeRecord",
    "EhFrameBuilder",
    "FdeSpec",
    "EhFrameParseError",
    "parse_eh_frame",
    "CfaRow",
    "CfaTable",
    "build_cfa_table",
]
