"""Resilience substrate: deterministic fault injection and recovery policies.

Two halves, consumed by the real execution paths (service, executor, store):

* :mod:`repro.resilience.faults` — a seeded, reproducible fault-injection
  plane.  Named *sites* threaded through the stack (detector invocation,
  worker loops, process-pool fan-out, store writes, lock acquisition) call
  :func:`faults.fire`; with no plan installed the call is a no-op.  A plan
  (``REPRO_FAULTS`` / ``--faults``) injects raised exceptions, delays, torn
  store writes and hard worker kills, each decided by a hash of
  ``(seed, site, key, occurrence)`` so every failure is reproducible from
  its seed.
* :mod:`repro.resilience.policy` — the recovery policies the injected
  faults exercise: :class:`RetryPolicy` (bounded attempts, deterministic
  exponential backoff), :func:`call_with_timeout` (per-entry detector
  timeouts), :class:`CircuitBreaker` (quarantine a repeatedly-crashing
  detector) and :class:`ResilienceConfig` (the service-facing bundle).

``benchmarks/bench_chaos.py`` drives a corpus batch under a configured
fault plan and proves the contract: zero lost entries, surviving results
byte-identical to a fault-free run.
"""

from repro.resilience.faults import (
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    TornWrite,
    WorkerKilled,
)
from repro.resilience.policy import (
    CircuitBreaker,
    CircuitOpen,
    DetectorTimeout,
    ResilienceConfig,
    RetryPolicy,
    call_with_timeout,
    failure_record,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "DetectorTimeout",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ResilienceConfig",
    "RetryPolicy",
    "TornWrite",
    "WorkerKilled",
    "call_with_timeout",
    "failure_record",
]
