"""ANGR-style detector model.

Strategies (paper §IV-C / §IV-D): seed from symbols and FDEs, recursive
disassembly, an *alignment* heuristic (in a padding region, the first
non-padding instruction becomes a function start), *function merging* (two
adjacent functions connected by the only jump between them are merged),
prologue matching over gaps, a heuristic tail-call detector, and a *linear
scan* of the remaining gaps.  The toggles correspond to the Figure 5b ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.linearscan import linear_scan_gaps
from repro.analysis.padding import PADDING_BYTES
from repro.baselines.base import BaselineTool
from repro.core.context import AnalysisContext, context_for
from repro.core.registry import register_detector
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@dataclass(frozen=True)
class AngrOptions:
    """Strategy toggles matching Figure 5b."""

    use_recursion: bool = True
    alignment_heuristic: bool = True
    function_merging: bool = False
    function_matching: bool = False
    tail_call_heuristic: bool = False
    linear_scan: bool = False


@register_detector(
    "angr",
    options=AngrOptions,
    order=80,
    comparison=True,
    needs_eh_frame=True,
    cet_aware=True,
    description="FDE+symbol seeds, recursion, alignment and merge heuristics",
)
class AngrLike(BaselineTool):
    """A strategy-faithful model of angr's CFGFast function detection."""

    def __init__(self, options: AngrOptions | None = None):
        self.options = options or AngrOptions()

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        options = self.options
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)

        seeds = self._fde_starts(image) | self._symbol_starts(image)
        seeds = {s for s in seeds if image.is_executable_address(s)}
        result.record_stage("seeds", seeds)
        if not options.use_recursion:
            return result

        disassembler, disassembly, starts = self._recursive(image, seeds, context)
        result.disassembly = disassembly
        result.record_stage("recursion", starts - result.function_starts)

        if options.alignment_heuristic:
            added = self._alignment_starts(image, disassembly, result.function_starts)
            result.record_stage("alignment", added)

        if options.function_merging:
            removed = self._merge_adjacent(image, disassembly, result.function_starts)
            result.record_stage("fmerge", set(), removed)

        if options.function_matching:
            matches = {
                m
                for m in self._prologue_matches(
                    image, self._gaps(image, disassembly), context
                )
                if m not in result.function_starts
            }
            grown = self._grow_from_matches(image, disassembler, disassembly, matches)
            result.record_stage("fsig", grown - result.function_starts)

        if options.tail_call_heuristic:
            added = self._heuristic_tail_calls(image, disassembly, result.function_starts)
            result.record_stage("tailcall", added - result.function_starts)

        if options.linear_scan:
            scanned = linear_scan_gaps(
                image,
                self._gaps(image, disassembly),
                context=context,
                require_endbr=image.uses_cet,
            )
            result.record_stage("scan", scanned - result.function_starts)

        return result

    # ------------------------------------------------------------------
    def _alignment_starts(
        self, image: BinaryImage, disassembly, starts: set[int]
    ) -> set[int]:
        """First non-padding byte of a padding-led gap becomes a start."""
        added: set[int] = set()
        for gap_start, gap_end in self._gaps(image, disassembly):
            section = image.section_containing(gap_start)
            if section is None:
                continue
            data = section.data
            cursor = gap_start
            saw_padding = False
            while cursor < gap_end:
                byte = data[cursor - section.address]
                if byte in PADDING_BYTES:
                    saw_padding = True
                    cursor += 1
                    continue
                break
            if saw_padding and cursor < gap_end and cursor not in starts:
                added.add(cursor)
        return added

    def _merge_adjacent(
        self, image: BinaryImage, disassembly, starts: set[int]
    ) -> set[int]:
        """Merge two adjacent functions connected by the only jump between them."""
        removed: set[int] = set()
        ordered = sorted(starts)
        jump_targets: dict[int, list[int]] = {}
        for insn in disassembly.instructions.values():
            if insn.is_jump and insn.branch_target is not None:
                jump_targets.setdefault(insn.branch_target, []).append(insn.address)

        for index in range(len(ordered) - 1):
            first, second = ordered[index], ordered[index + 1]
            function = disassembly.functions.get(first)
            if function is None:
                continue
            outgoing = [
                j
                for j in function.jumps
                if j.branch_target is not None and not (first <= j.branch_target < second)
            ]
            if len(outgoing) != 1 or outgoing[0].branch_target != second:
                continue
            incoming = jump_targets.get(second, [])
            if len(incoming) == 1 and incoming[0] == outgoing[0].address:
                removed.add(second)
        return removed

    def _heuristic_tail_calls(
        self, image: BinaryImage, disassembly, starts: set[int]
    ) -> set[int]:
        added: set[int] = set()
        fde_ranges = {fde.pc_begin: (fde.pc_begin, fde.pc_end) for fde in image.fdes}
        for start, function in disassembly.functions.items():
            begin, end = fde_ranges.get(start, (start, function.end))
            for jump in function.jumps:
                target = jump.branch_target
                if target is None or not image.is_executable_address(target):
                    continue
                if begin <= target < end:
                    continue
                if target not in starts:
                    added.add(target)
        return added
