"""Shared-context parity and caching behaviour.

The contract of :class:`repro.core.context.AnalysisContext`: every detector
produces byte-identical results whether it runs with a private context or
with a context shared across all detectors, and repeated decodes hit the
cache instead of re-decoding.
"""

from __future__ import annotations

import pytest

from repro.analysis.gaps import compute_gaps
from repro.analysis.prologue import match_prologues
from repro.analysis.recursive import RecursiveDisassembler
from repro.baselines import all_comparison_tools
from repro.core import AnalysisContext, FetchDetector
from repro.core.context import context_for
from repro.eval import CorpusEvaluator, run_figure5c, run_tool_comparison
from repro.x86.disassembler import DecodeError, decode_instruction


def _all_detectors():
    return all_comparison_tools() + [FetchDetector()]


def _snapshot(result):
    """The complete observable output of a detection run."""
    return {
        "starts": sorted(result.function_starts),
        "added": {k: sorted(v) for k, v in result.added_by_stage.items()},
        "removed": {k: sorted(v) for k, v in result.removed_by_stage.items()},
        "merged": dict(result.merged_parts),
        "tailcalls": sorted(result.tail_call_targets),
    }


# ----------------------------------------------------------------------
# Parity: shared context vs fresh runs
# ----------------------------------------------------------------------

def test_every_detector_is_context_parity_clean(small_corpus):
    """FETCH and all nine baselines: shared context == uncached run."""
    for binary in small_corpus:
        shared = AnalysisContext(binary.image)
        for detector in _all_detectors():
            fresh = detector.detect(binary.image)
            cached = detector.detect(binary.image, shared)
            assert _snapshot(fresh) == _snapshot(cached), (
                f"{detector.name} diverges on {binary.name} with a shared context"
            )


def test_repeated_runs_on_one_context_stay_stable(small_corpus):
    """Re-running a detector on a warm context changes nothing."""
    binary = small_corpus[0]
    context = AnalysisContext(binary.image)
    detector = FetchDetector()
    first = detector.detect(binary.image, context)
    second = detector.detect(binary.image, context)
    assert _snapshot(first) == _snapshot(second)


def test_prologue_matching_parity_with_context(small_corpus):
    binary = small_corpus[0]
    context = AnalysisContext(binary.image)
    disassembly = RecursiveDisassembler(binary.image).disassemble(
        {fde.pc_begin for fde in binary.image.fdes}
    )
    gaps = compute_gaps(binary.image, disassembly)
    assert match_prologues(binary.image, gaps) == match_prologues(
        binary.image, gaps, context=context
    )


def test_context_rejects_foreign_image(small_corpus):
    context = AnalysisContext(small_corpus[0].image)
    with pytest.raises(ValueError, match="context was built for"):
        context_for(small_corpus[1].image, context)


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------

def test_repeated_decodes_hit_the_cache(small_corpus):
    binary = small_corpus[0]
    context = AnalysisContext(binary.image)
    address = min(fde.pc_begin for fde in binary.image.fdes)

    first = context.decode(address)
    assert first is not None
    misses = context.decode_cache.misses
    hits_before = context.decode_cache.hits
    second = context.decode(address)
    assert second is first
    assert context.decode_cache.hits == hits_before + 1
    assert context.decode_cache.misses == misses


def test_second_detector_reuses_decode_work(small_corpus):
    """A second detector on a warm context re-decodes nothing at all."""
    binary = small_corpus[0]
    context = AnalysisContext(binary.image)
    FetchDetector().detect(binary.image, context)
    cached_instructions = len(context.decode_cache)
    cached_functions = len(context.function_cache)
    misses_before = context.decode_cache.misses
    assert cached_instructions > 0 and cached_functions > 0

    FetchDetector().detect(binary.image, context)
    assert len(context.decode_cache) == cached_instructions
    assert len(context.function_cache) == cached_functions
    assert context.decode_cache.misses == misses_before


def test_decode_instruction_cache_replays_errors():
    cache: dict = {}
    good = bytes.fromhex("55")  # push rbp
    insn = decode_instruction(good, 0, 0x1000, cache)
    assert decode_instruction(good, 0, 0x1000, cache) is insn

    bad = b"\x06"  # unsupported opcode
    with pytest.raises(DecodeError):
        decode_instruction(bad, 0, 0x2000, cache)
    assert cache[0x2000] is None
    with pytest.raises(DecodeError):
        decode_instruction(bad, 0, 0x2000, cache)


def test_context_stats_report_cached_state(small_corpus):
    binary = small_corpus[0]
    context = AnalysisContext(binary.image)
    FetchDetector().detect(binary.image, context)
    stats = context.stats()
    assert stats.cached_instructions == len(context.decode_cache)
    assert stats.cached_instructions > 0
    assert stats.cached_cfa_tables > 0
    assert stats.cached_callconv_checks > 0
    assert 0.0 <= stats.decode_hit_ratio <= 1.0
    assert stats.as_dict()["decode_hits"] == stats.decode_hits


def test_mutually_recursive_functions_stay_out_of_shared_cache():
    """Noreturn facts on call cycles are order-dependent; never share them."""
    from repro.elf import constants as C
    from repro.elf.image import BinaryImage
    from repro.elf.structs import ElfFile, Section

    a, b = 0x401000, 0x401010
    code = bytearray(0x20)
    code[0x00:0x05] = b"\xe8\x0b\x00\x00\x00"  # A: call B
    code[0x05] = 0xC3  # ret
    code[0x06:0x10] = b"\x90" * 10
    code[0x10:0x15] = b"\xe8\xeb\xff\xff\xff"  # B: call A
    code[0x15] = 0xC3  # ret
    code[0x16:0x20] = b"\x90" * 10
    text = Section(
        name=".text", data=bytes(code), address=a,
        flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
    )
    image = BinaryImage(elf=ElfFile(sections=[text], entry_point=a), name="cycle")

    context = AnalysisContext(image)
    shared_disassembler = RecursiveDisassembler(image, context=context)
    shared = shared_disassembler.disassemble({a, b})
    assert set(shared.functions) == {a, b}
    # Both functions sit on the call cycle: tainted, so nothing is cached.
    assert shared_disassembler._tainted == {a, b}
    assert context.function_cache == {}

    fresh = RecursiveDisassembler(image).disassemble({a, b})
    for start in (a, b):
        assert set(fresh.functions[start].instructions) == set(
            shared.functions[start].instructions
        )

    # Context-level noreturn queries run on fresh state each time, so the
    # answer is query-order independent even on the cycle (both return).
    forward = AnalysisContext(image)
    backward = AnalysisContext(image)
    assert [forward.is_noreturn(a), forward.is_noreturn(b)] == [
        backward.is_noreturn(b), backward.is_noreturn(a)
    ][::-1]
    assert a not in forward._noreturn  # cycle members are never memoized


def test_precise_noreturn_analysis_parity_on_cycles():
    """Precise NoreturnAnalysis must agree with and without a context even
    when a call cycle makes the fix-point entry-order dependent."""
    from repro.analysis import NoreturnAnalysis
    from repro.elf import constants as C
    from repro.elf.image import BinaryImage
    from repro.elf.structs import ElfFile, Section

    b, a = 0x401000, 0x401010
    code = bytearray(0x20)
    code[0x00:0x05] = b"\xe8\x0b\x00\x00\x00"  # B: call A
    code[0x05] = 0xC3  # ret
    code[0x06:0x10] = b"\x90" * 10
    code[0x10:0x15] = b"\xe8\xeb\xff\xff\xff"  # A: call B
    code[0x15] = 0xF4  # hlt — A never returns on its own path
    code[0x16:0x20] = b"\x90" * 10
    text = Section(
        name=".text", data=bytes(code), address=b,
        flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
    )
    image = BinaryImage(elf=ElfFile(sections=[text], entry_point=b), name="nr-cycle")

    disassembly = RecursiveDisassembler(image).disassemble({a, b})
    without_context = NoreturnAnalysis(image).compute(disassembly)
    with_context = NoreturnAnalysis(
        image, context=AnalysisContext(image)
    ).compute(disassembly)
    assert without_context == with_context


# ----------------------------------------------------------------------
# Parallel corpus evaluation
# ----------------------------------------------------------------------

def test_parallel_evaluation_matches_serial(small_corpus):
    corpus = small_corpus[:4]
    serial = run_tool_comparison(corpus, evaluator=CorpusEvaluator(corpus, jobs=1))
    parallel = run_tool_comparison(corpus, evaluator=CorpusEvaluator(corpus, jobs=4))
    assert serial == parallel


def test_unshared_evaluation_matches_shared(small_corpus):
    """The before/after benchmark comparison is apples to apples."""
    corpus = small_corpus[:3]
    unshared = run_tool_comparison(
        corpus, evaluator=CorpusEvaluator(corpus, share_contexts=False)
    )
    shared = run_tool_comparison(corpus, evaluator=CorpusEvaluator(corpus))
    assert unshared == shared


def test_shared_ladder_matches_fresh_ladder(small_corpus):
    corpus = small_corpus[:4]
    fresh = run_figure5c(corpus)
    shared = run_figure5c(corpus, evaluator=CorpusEvaluator(corpus, jobs=2))
    assert [o.label for o in fresh] == [o.label for o in shared]
    for a, b in zip(fresh, shared):
        assert a.metrics.summary() == b.metrics.summary()
        assert [m.false_positives for m in a.metrics.per_binary] == [
            m.false_positives for m in b.metrics.per_binary
        ]
        assert [m.false_negatives for m in a.metrics.per_binary] == [
            m.false_negatives for m in b.metrics.per_binary
        ]


def test_evaluator_map_preserves_corpus_order(small_corpus):
    evaluator = CorpusEvaluator(small_corpus, jobs=4)
    names = evaluator.map(lambda binary, context: binary.name)
    assert names == [binary.name for binary in small_corpus]


def test_evaluator_reuses_one_context_per_binary(small_corpus):
    evaluator = CorpusEvaluator(small_corpus)
    first = evaluator.context_for(small_corpus[0])
    assert evaluator.context_for(small_corpus[0]) is first
    assert evaluator.context_for(small_corpus[1]) is not first

    evaluator.release(small_corpus[0])
    assert evaluator.context_for(small_corpus[0]) is not first
    evaluator.release()
    assert evaluator._contexts == {}


def test_evaluator_writes_bench_record(tmp_path, small_corpus):
    import json

    corpus = small_corpus[:2]
    evaluator = CorpusEvaluator(corpus, jobs=2, bench_dir=tmp_path)
    evaluator.timed("smoke", evaluator.run_detector, FetchDetector)
    path = evaluator.write_bench("smoke_test", extra={"note": "unit"})
    assert path is not None and path.name == "BENCH_smoke_test.json"
    record = json.loads(path.read_text())
    assert record["bench"] == "smoke_test"
    assert record["jobs"] == 2
    assert record["corpus_size"] == 2
    assert record["timings_seconds"]["smoke"] >= 0
    assert record["cache"]["decode_misses"] > 0
    assert record["extra"] == {"note": "unit"}


def test_evaluator_without_bench_dir_writes_nothing(small_corpus):
    evaluator = CorpusEvaluator(small_corpus[:1])
    assert evaluator.write_bench("nowhere") is None
