"""DYNINST-style detector model.

DYNINST does not use exception-handling information.  It starts from the
program entry point (and symbols, when present — the comparison in Table III
follows the stripped-binary convention and ignores them), grows coverage with
recursive disassembly, and then repeatedly scans the remaining gaps with
prologue patterns, recursing from every match (§II-B).
"""

from __future__ import annotations

from repro.baselines.base import BaselineTool
from repro.core.registry import register_detector
from repro.core.context import AnalysisContext, context_for
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@register_detector(
    "dyninst",
    order=10,
    comparison=True,
    cet_aware=True,
    description="entry-point recursion plus repeated gap prologue matching",
)
class DyninstLike(BaselineTool):

    #: number of prologue-matching + recursion rounds
    rounds: int = 2

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)
        seeds = {image.entry_point} if image.entry_point else set()
        seeds = {s for s in seeds if image.is_executable_address(s)}
        result.record_stage("seeds", seeds)

        disassembler, disassembly, starts = self._recursive(image, seeds, context)
        result.disassembly = disassembly
        result.record_stage("recursion", starts - result.function_starts)

        for round_index in range(self.rounds):
            gaps = self._gaps(image, disassembly)
            matches = {
                m
                for m in self._prologue_matches(image, gaps, context)
                if m not in result.function_starts
            }
            if not matches:
                break
            grown = self._grow_from_matches(image, disassembler, disassembly, matches)
            result.record_stage(f"prologue_{round_index}", grown - result.function_starts)
        return result
