"""Append-only manifest/index journal of the artifact store.

Every artifact write appends one JSON line to ``index/journal.jsonl``
(``{"op": "put", "ns": ..., "key": ..., "bytes": ..., "ts": ...}``; GC
appends ``"del"`` lines), so ``fetch-detect store stats``, corpus-manifest
listings and key enumeration answer from the index — never by walking the
object tree.  When the journal outgrows ``journal_limit_bytes`` it is
compacted: the surviving entries are folded into an atomic
``index/snapshot.json`` and the journal restarts empty.  Appends and
compaction run under the store's cross-process :class:`FileLock`, so a
compaction can never drop a concurrent writer's append.

The index is an *accelerator*, not the source of truth: it can always be
rebuilt from the tree (``StoreIndex.rebuild``, exposed as
``fetch-detect store stats --rebuild`` and run by ``store migrate``), and
pre-index (v1-era) stores simply read as empty until rebuilt.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.store.backend import atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.backend import StoreBackend

SNAPSHOT_FORMAT = 1


class StoreIndex:
    """Journal + snapshot index over one store root.

    All mutating methods (``append``, ``compact``, ``rebuild``) must be
    called while holding the store's file lock — the :class:`ArtifactStore`
    wraps them; nothing here takes locks itself.  Reads (``entries``,
    ``stats``, ``keys``) are lock-free: the snapshot is atomically
    replaced and journal lines are appended whole, so a reader sees a
    consistent prefix at worst.
    """

    def __init__(self, root: str | os.PathLike, *, journal_limit_bytes: int = 1_000_000):
        self.directory = Path(root) / "index"
        self.journal_path = self.directory / "journal.jsonl"
        self.snapshot_path = self.directory / "snapshot.json"
        self.journal_limit_bytes = int(journal_limit_bytes)

    # -- writes (caller holds the store lock) ---------------------------
    def append(self, op: str, namespace: str, key: str, size_bytes: int) -> int:
        """Append one journal line; returns the journal size afterwards."""
        record = {
            "op": op,
            "ns": namespace,
            "key": key,
            "bytes": int(size_bytes),
            "ts": round(time.time(), 6),
        }
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        self.directory.mkdir(parents=True, exist_ok=True)
        handle = os.open(
            self.journal_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o666
        )
        try:
            os.write(handle, line)
            return os.lseek(handle, 0, os.SEEK_CUR)
        finally:
            os.close(handle)

    def compact(self) -> int:
        """Fold the journal into the snapshot; returns surviving entries."""
        entries = self.entries()
        self._write_snapshot(entries)
        try:
            os.unlink(self.journal_path)
        except OSError:
            pass
        return len(entries)

    def rebuild(self, backend: "StoreBackend") -> dict[str, int]:
        """Reconstruct the index from the object tree (the one slow walk).

        Duplicate (namespace, key) sightings — e.g. a v1 and a v2 copy of
        one record mid-migration — keep the newest mtime.
        """
        entries: dict[tuple[str, str], dict[str, Any]] = {}
        for namespace, key, _path, size, mtime in backend.iter_entries():
            current = entries.get((namespace, key))
            if current is None or mtime > current["ts"]:
                entries[(namespace, key)] = {"bytes": size, "ts": round(mtime, 6)}
        self._write_snapshot(entries)
        try:
            os.unlink(self.journal_path)
        except OSError:
            pass
        return {"entries": len(entries)}

    def _write_snapshot(self, entries: dict[tuple[str, str], dict[str, Any]]) -> None:
        payload = {
            "format": SNAPSHOT_FORMAT,
            "compacted_unix": round(time.time(), 3),
            "entries": {
                f"{namespace}/{key}": value
                for (namespace, key), value in sorted(entries.items())
            },
        }
        atomic_write_bytes(
            self.snapshot_path,
            (json.dumps(payload, sort_keys=True) + "\n").encode(),
        )

    # -- reads (lock-free) ----------------------------------------------
    def entries(self) -> dict[tuple[str, str], dict[str, Any]]:
        """The live index: snapshot plus journal replay, ``del``\\ s applied."""
        entries: dict[tuple[str, str], dict[str, Any]] = {}
        try:
            snapshot = json.loads(self.snapshot_path.read_text())
            if snapshot.get("format") == SNAPSHOT_FORMAT:
                for joined, value in snapshot.get("entries", {}).items():
                    namespace, _, key = joined.partition("/")
                    entries[(namespace, key)] = value
        except (OSError, ValueError, AttributeError):
            pass
        for record in self._journal_records():
            identity = (record.get("ns", ""), record.get("key", ""))
            if record.get("op") == "del":
                entries.pop(identity, None)
            else:
                entries[identity] = {
                    "bytes": record.get("bytes", 0),
                    "ts": record.get("ts", 0.0),
                }
        return entries

    def _journal_records(self) -> Iterable[dict[str, Any]]:
        try:
            lines = self.journal_path.read_bytes().splitlines()
        except OSError:
            return
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # a torn trailing line never poisons the index
            if isinstance(record, dict):
                yield record

    def has_data(self) -> bool:
        return self.snapshot_path.exists() or self.journal_path.exists()

    def keys(self, namespace: str) -> list[str]:
        """Every indexed key of ``namespace``, sorted (no tree walk)."""
        return sorted(
            key for (ns, key) in self.entries() if ns == namespace
        )

    def stats(self) -> dict[str, Any]:
        """Entry counts and byte totals, overall and per namespace."""
        per_namespace: dict[str, dict[str, int]] = {}
        total_bytes = 0
        entries = self.entries()
        for (namespace, _key), value in entries.items():
            bucket = per_namespace.setdefault(namespace, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += int(value.get("bytes", 0))
            total_bytes += int(value.get("bytes", 0))
        try:
            journal_bytes = self.journal_path.stat().st_size
        except OSError:
            journal_bytes = 0
        return {
            "entries": len(entries),
            "bytes": total_bytes,
            "namespaces": per_namespace,
            "journal_bytes": journal_bytes,
            "compacted": self.snapshot_path.exists(),
        }
