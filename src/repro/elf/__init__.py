"""ELF-64 reading and writing substrate.

Provides a writer (:func:`~repro.elf.writer.write_elf`) used by the synthetic
compiler, a reader (:func:`~repro.elf.reader.read_elf`), and the
:class:`~repro.elf.image.BinaryImage` facade that the detection and analysis
layers consume.
"""

from repro.elf.structs import ElfFile, Section, Symbol
from repro.elf.writer import write_elf, write_elf_file
from repro.elf.reader import ElfParseError, read_elf, read_elf_file
from repro.elf.image import BinaryImage

__all__ = [
    "ElfFile",
    "Section",
    "Symbol",
    "write_elf",
    "write_elf_file",
    "ElfParseError",
    "read_elf",
    "read_elf_file",
    "BinaryImage",
]
