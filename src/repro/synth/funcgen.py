"""Per-function code generation.

Lowers a :class:`~repro.synth.plan.FunctionPlan` into machine-code *items*
(raw bytes plus symbolic relocations for calls, jumps and RIP-relative data
references), the call-frame-information events that describe its stack
behaviour, and any read-only data objects it needs (jump tables).  Layout and
relocation resolution happen later in :mod:`repro.synth.compiler`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dwarf import cfi
from repro.dwarf import constants as DC
from repro.dwarf.cfi import CfiInstruction
from repro.synth.plan import FunctionPlan
from repro.x86.assembler import Assembler
from repro.x86.operands import Mem
from repro.x86.registers import (
    ARGUMENT_REGISTERS,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    RAX,
    RBP,
    RBX,
    RCX,
    RDI,
    RDX,
    RSI,
    RSP,
    Register,
)

_ASM = Assembler()

#: Callee-saved registers available for saving in prologues (besides rbp).
_SAVEABLE = (RBX, R12, R13, R14, R15)
#: Caller-saved scratch registers used for body statements.
_SCRATCH = (RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11)


@dataclass
class Reloc:
    """A symbolic instruction whose final encoding needs an address.

    ``kind`` is one of ``call``, ``jmp``, ``jcc``, ``lea``, ``mov_load_rip``,
    ``call_mem_rip``, ``jmp_mem_rip``, ``mov_imm_addr``.
    """

    kind: str
    target: str
    cc: str = ""
    reg: Register | None = None

    @property
    def size(self) -> int:
        if self.kind in ("call", "jmp"):
            return 5
        if self.kind == "jcc":
            return 6
        if self.kind in ("lea", "mov_load_rip"):
            return 7
        if self.kind in ("call_mem_rip", "jmp_mem_rip"):
            return 6
        if self.kind == "mov_imm_addr":
            assert self.reg is not None
            return 6 if self.reg.needs_rex else 5
        raise ValueError(f"unknown reloc kind {self.kind}")


@dataclass
class PointerTo:
    """An 8-byte absolute pointer to a label/symbol, stored in a data object."""

    target: str


@dataclass
class DataObject:
    """A read-only or writable data object emitted for a function."""

    symbol: str
    items: list = field(default_factory=list)
    section: str = ".rodata"

    @property
    def size(self) -> int:
        total = 0
        for item in self.items:
            total += 8 if isinstance(item, PointerTo) else len(item)
        return total


@dataclass
class Part:
    """One contiguous code region of a function (hot part or cold part)."""

    name: str
    items: list = field(default_factory=list)
    size: int = 0
    #: (offset-after-instruction, CFI instruction) pairs
    cfi: list[tuple[int, CfiInstruction]] = field(default_factory=list)
    #: CFI instructions establishing the state at part entry (cold parts)
    initial_cfi: list[CfiInstruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    is_cold: bool = False
    has_fde: bool = True
    has_symbol: bool = True
    symbol_type: str = "func"
    alignment: int = 16
    bad_fde_offset: int = 0


@dataclass
class FunctionCode:
    """The generated code for one function."""

    plan: FunctionPlan
    hot: Part
    cold: Part | None = None
    data_objects: list[DataObject] = field(default_factory=list)

    @property
    def parts(self) -> list[Part]:
        return [self.hot] + ([self.cold] if self.cold is not None else [])


class _Emitter:
    """Tracks byte offsets, CFI events and initialized registers for a part."""

    def __init__(self, part: Part, frame: str):
        self.part = part
        self.frame = frame
        self.stack_height = 0
        self.initialized: set[Register] = {RSP, RBP}

    # -- low level ------------------------------------------------------
    def raw(self, data: bytes) -> None:
        self.part.items.append(data)
        self.part.size += len(data)

    def reloc(self, reloc: Reloc) -> None:
        self.part.items.append(reloc)
        self.part.size += reloc.size

    def label(self, name: str) -> None:
        self.part.labels[name] = self.part.size

    def cfi_here(self, instruction: CfiInstruction) -> None:
        self.part.cfi.append((self.part.size, instruction))

    # -- stack-affecting helpers -----------------------------------------
    def push(self, reg: Register, *, record_cfa: bool = True) -> None:
        self.raw(_ASM.push(reg))
        self.stack_height += 8
        if self.frame == "rsp" and record_cfa:
            self.cfi_here(cfi.def_cfa_offset(self.stack_height + 8))

    def pop(self, reg: Register, *, record_cfa: bool = True) -> None:
        self.raw(_ASM.pop(reg))
        self.stack_height -= 8
        if self.frame == "rsp" and record_cfa:
            self.cfi_here(cfi.def_cfa_offset(self.stack_height + 8))
        self.initialized.add(reg)

    def sub_rsp(self, amount: int) -> None:
        self.raw(_ASM.sub_ri(RSP, amount))
        self.stack_height += amount
        if self.frame == "rsp":
            self.cfi_here(cfi.def_cfa_offset(self.stack_height + 8))

    def add_rsp(self, amount: int) -> None:
        self.raw(_ASM.add_ri(RSP, amount))
        self.stack_height -= amount
        if self.frame == "rsp":
            self.cfi_here(cfi.def_cfa_offset(self.stack_height + 8))

    def call(self, target: str) -> None:
        self.reloc(Reloc("call", target))
        # A call clobbers the caller-saved registers and defines rax.
        self.initialized -= set(_SCRATCH)
        self.initialized |= {RAX, RSP, RBP}


def generate_function(plan: FunctionPlan, rng: random.Random) -> FunctionCode:
    """Generate the code items, CFI and data objects for ``plan``."""
    hot = Part(
        name=plan.name,
        has_fde=plan.has_fde,
        has_symbol=plan.has_symbol,
        symbol_type=plan.symbol_type,
        alignment=plan.alignment,
        bad_fde_offset=plan.bad_fde_offset,
    )
    code = FunctionCode(plan=plan, hot=hot)
    emitter = _Emitter(hot, plan.frame)

    if plan.entry_padding:
        # -fpatchable-function-entry style: NOPs at the entry point, inside
        # the function (the FDE covers them, the symbol points at the first
        # NOP).  Prologue signatures therefore sit entry_padding bytes past
        # the true start.
        emitter.raw(_ASM.nop(plan.entry_padding))

    if plan.kind == "thunk":
        _generate_thunk(plan, emitter)
        return code
    if plan.kind == "terminate":
        _generate_terminate(plan, emitter)
        return code

    saved = _generate_prologue(plan, emitter)
    _generate_body(plan, emitter, code, rng)
    _generate_cold_part(plan, emitter, code, rng)
    _generate_epilogue(plan, emitter, saved, rng)
    return code


# ----------------------------------------------------------------------
# Prologue / epilogue
# ----------------------------------------------------------------------

def _generate_prologue(plan: FunctionPlan, emitter: _Emitter) -> list[Register]:
    if plan.emits_endbr:
        emitter.raw(_ASM.endbr64())

    if plan.violates_callconv:
        # Hand-written assembly reading a non-argument register on entry.
        emitter.raw(_ASM.mov_rr(RAX, R10))
        emitter.initialized.add(RAX)

    if plan.frame == "rbp":
        emitter.push(RBP, record_cfa=False)
        emitter.cfi_here(cfi.def_cfa_offset(16))
        emitter.cfi_here(cfi.offset(DC.DWARF_REG_RBP, -16))
        emitter.raw(_ASM.mov_rr(RBP, RSP))
        emitter.cfi_here(cfi.def_cfa_register(DC.DWARF_REG_RBP))

    saved = list(_SAVEABLE[: plan.saved_registers])
    for reg in saved:
        emitter.push(reg)
        emitter.cfi_here(
            cfi.offset(reg.dwarf_number, -(emitter.stack_height + 8))
        )
    if plan.frame_size:
        emitter.sub_rsp(plan.frame_size)

    # Argument registers are live on entry.
    emitter.initialized |= set(ARGUMENT_REGISTERS[: plan.arg_count])
    return saved


def _generate_epilogue(
    plan: FunctionPlan, emitter: _Emitter, saved: list[Register], rng: random.Random
) -> None:
    if plan.noreturn_callee is not None and plan.kind == "entry":
        # Startup code ends with a call that never returns (exit); the
        # compiler emits no epilogue and no fall-through code after it.
        emitter.raw(_ASM.mov_ri32(RDI, rng.randrange(1, 16)))
        emitter.initialized.add(RDI)
        emitter.call(plan.noreturn_callee)
        return

    if plan.is_noreturn:
        # A noreturn function: terminate with ud2 (abort-style) instead of ret.
        emitter.raw(_ASM.mov_ri32(RDI, 134))
        emitter.raw(_ASM.ud2())
        return

    # Materialise a return value.
    emitter.raw(_ASM.xor_rr32(RAX, RAX))
    emitter.initialized.add(RAX)

    if plan.frame_size:
        emitter.add_rsp(plan.frame_size)
    for reg in reversed(saved):
        emitter.pop(reg)
    if plan.frame == "rbp":
        emitter.raw(_ASM.pop(RBP))
        emitter.stack_height -= 8
        emitter.cfi_here(cfi.def_cfa(DC.DWARF_REG_RSP, 8))

    if plan.tail_call_to is not None:
        emitter.reloc(Reloc("jmp", plan.tail_call_to))
    else:
        emitter.raw(_ASM.ret())


# ----------------------------------------------------------------------
# Body
# ----------------------------------------------------------------------

def _generate_body(
    plan: FunctionPlan, emitter: _Emitter, code: FunctionCode, rng: random.Random
) -> None:
    pending_labels: list[str] = []
    label_counter = 0

    def new_label() -> str:
        nonlocal label_counter
        label_counter += 1
        return f"{plan.name}.L{label_counter}"

    if plan.jump_table_cases:
        _generate_jump_table(plan, emitter, code, rng, new_label)

    # References to address-taken functions: the address is materialised as a
    # 32-bit immediate, which is one of the "constants in disassembled code"
    # the paper's pointer collection (§IV-E) must consider.
    for target in plan.address_refs:
        emitter.reloc(Reloc("mov_imm_addr", target, reg=rng.choice((RSI, RDX, RCX))))

    # Indirect calls through writable function-pointer slots.
    for slot in plan.indirect_call_slots:
        emitter.raw(_ASM.mov_ri32(RDI, rng.randrange(0, 128)))
        emitter.initialized.add(RDI)
        emitter.reloc(Reloc("call_mem_rip", slot))
        emitter.initialized -= set(_SCRATCH)
        emitter.initialized |= {RAX}

    # Guarded fatal-error path: `if (unlikely) abort();` — the call never
    # returns, but the rest of the function stays reachable through the
    # branch around it, matching how compilers lay out such code.
    if plan.noreturn_callee is not None and plan.kind != "entry":
        skip_label = new_label()
        ready = _initialized_scratch(emitter)
        guard = ready[0] if ready else RDI
        if guard not in emitter.initialized:
            emitter.raw(_ASM.xor_rr32(guard, guard))
            emitter.initialized.add(guard)
        emitter.raw(_ASM.test_rr(guard, guard))
        emitter.reloc(Reloc("jcc", skip_label, cc="ne"))
        emitter.raw(_ASM.mov_ri32(RDI, rng.randrange(1, 64)))
        emitter.call(plan.noreturn_callee)
        emitter.label(skip_label)
        emitter.initialized.add(RDI)

    callees = list(plan.callees)
    statements = max(plan.body_statements, len(callees) * 2)
    placed_labels: list[str] = []

    for index in range(statements):
        # Resolve one pending forward label every other statement.
        if pending_labels and rng.random() < 0.5:
            label = pending_labels.pop(0)
            emitter.label(label)
            placed_labels.append(label)

        choice = rng.random()
        if callees and (choice < 0.30 or index >= statements - len(callees)):
            _emit_call_statement(emitter, callees.pop(0), rng)
        elif choice < 0.55:
            _emit_arith_statement(emitter, rng)
        elif choice < 0.75 and plan.frame_size >= 16:
            _emit_memory_statement(emitter, plan, rng)
        elif choice < 0.90:
            label = new_label()
            pending_labels.append(label)
            _emit_forward_branch(emitter, label, rng)
        elif placed_labels:
            _emit_backward_branch(emitter, placed_labels, rng)
        else:
            _emit_arith_statement(emitter, rng)

    for label in pending_labels:
        emitter.label(label)
    while callees:
        _emit_call_statement(emitter, callees.pop(0), rng)


def _initialized_scratch(emitter: _Emitter) -> list[Register]:
    return [reg for reg in _SCRATCH if reg in emitter.initialized]


def _emit_arith_statement(emitter: _Emitter, rng: random.Random) -> None:
    ready = _initialized_scratch(emitter)
    dst = rng.choice(_SCRATCH)
    if not ready or rng.random() < 0.3:
        if rng.random() < 0.5:
            emitter.raw(_ASM.mov_ri(dst, rng.randrange(0, 1 << 20)))
        else:
            emitter.raw(_ASM.xor_rr32(dst, dst))
        emitter.initialized.add(dst)
        return
    src = rng.choice(ready)
    op = rng.choice(("mov", "add", "sub", "imul", "xor"))
    if dst not in emitter.initialized and op != "mov":
        emitter.raw(_ASM.mov_ri(dst, rng.randrange(0, 1 << 16)))
        emitter.initialized.add(dst)
    if op == "mov":
        emitter.raw(_ASM.mov_rr(dst, src))
    elif op == "add":
        emitter.raw(_ASM.add_rr(dst, src))
    elif op == "sub":
        emitter.raw(_ASM.sub_rr(dst, src))
    elif op == "imul":
        emitter.raw(_ASM.imul_rr(dst, src))
    else:
        emitter.raw(_ASM.xor_rr(dst, src))
    emitter.initialized.add(dst)


def _emit_memory_statement(emitter: _Emitter, plan: FunctionPlan, rng: random.Random) -> None:
    slot = 8 * rng.randrange(0, max(plan.frame_size // 8, 1))
    slot = min(slot, plan.frame_size - 8)
    mem = Mem(base=RSP, disp=slot)
    ready = _initialized_scratch(emitter)
    if ready and rng.random() < 0.5:
        emitter.raw(_ASM.mov_store(mem, rng.choice(ready)))
    else:
        dst = rng.choice(_SCRATCH)
        emitter.raw(_ASM.mov_load(dst, mem))
        emitter.initialized.add(dst)


def _emit_call_statement(emitter: _Emitter, callee: str, rng: random.Random) -> None:
    emitter.raw(_ASM.mov_ri32(RDI, rng.randrange(0, 256)))
    emitter.initialized.add(RDI)
    if rng.random() < 0.5:
        emitter.raw(_ASM.mov_ri32(RSI, rng.randrange(0, 256)))
        emitter.initialized.add(RSI)
    emitter.call(callee)


def _emit_forward_branch(emitter: _Emitter, label: str, rng: random.Random) -> None:
    ready = _initialized_scratch(emitter)
    if ready:
        reg = rng.choice(ready)
        if rng.random() < 0.5:
            emitter.raw(_ASM.test_rr(reg, reg))
        else:
            emitter.raw(_ASM.cmp_ri(reg, rng.randrange(0, 64)))
    else:
        emitter.raw(_ASM.xor_rr32(RAX, RAX))
        emitter.initialized.add(RAX)
        emitter.raw(_ASM.test_rr(RAX, RAX))
    cc = rng.choice(("e", "ne", "g", "le", "a"))
    emitter.reloc(Reloc("jcc", label, cc=cc))


def _emit_backward_branch(emitter: _Emitter, placed: list[str], rng: random.Random) -> None:
    ready = _initialized_scratch(emitter)
    reg = rng.choice(ready) if ready else RAX
    if reg not in emitter.initialized:
        emitter.raw(_ASM.xor_rr32(reg, reg))
        emitter.initialized.add(reg)
    emitter.raw(_ASM.cmp_ri(reg, rng.randrange(1, 32)))
    emitter.reloc(Reloc("jcc", rng.choice(placed), cc=rng.choice(("ne", "l", "b"))))


# ----------------------------------------------------------------------
# Jump tables
# ----------------------------------------------------------------------

def _generate_jump_table(
    plan: FunctionPlan,
    emitter: _Emitter,
    code: FunctionCode,
    rng: random.Random,
    new_label,
) -> None:
    cases = plan.jump_table_cases
    table_symbol = f"{plan.name}.jumptable"
    default_label = new_label()
    end_label = new_label()
    case_labels = [new_label() for _ in range(cases)]

    # Bound check + indexed indirect jump through the table.
    emitter.raw(_ASM.cmp_ri(RDI, cases - 1))
    emitter.reloc(Reloc("jcc", default_label, cc="a"))
    emitter.reloc(Reloc("lea", table_symbol, reg=RAX))
    emitter.initialized.add(RAX)
    emitter.raw(_ASM.jmp_mem(Mem(base=RAX, index=RDI, scale=8)))

    for label in case_labels:
        emitter.label(label)
        _emit_arith_statement(emitter, rng)
        emitter.reloc(Reloc("jmp", end_label))
    emitter.label(default_label)
    _emit_arith_statement(emitter, rng)
    emitter.label(end_label)

    code.data_objects.append(
        DataObject(
            symbol=table_symbol,
            items=[PointerTo(label) for label in case_labels],
            section=".rodata",
        )
    )


# ----------------------------------------------------------------------
# Cold parts (non-contiguous functions)
# ----------------------------------------------------------------------

def _generate_cold_part(
    plan: FunctionPlan, emitter: _Emitter, code: FunctionCode, rng: random.Random
) -> None:
    if not plan.cold_split:
        return

    cold_entry = f"{plan.name}.cold"
    return_label = f"{plan.name}.cold_return"

    # The hot part branches to the cold part on an unlikely condition.
    ready = _initialized_scratch(emitter)
    reg = ready[0] if ready else RDI
    if reg not in emitter.initialized:
        emitter.raw(_ASM.xor_rr32(reg, reg))
        emitter.initialized.add(reg)
    emitter.raw(_ASM.test_rr(reg, reg))
    emitter.reloc(Reloc("jcc", cold_entry, cc="e"))
    emitter.label(return_label)

    cold = Part(
        name=cold_entry,
        is_cold=True,
        has_fde=plan.has_fde,
        has_symbol=plan.has_symbol,
        alignment=1,
    )
    # The cold part's FDE starts with the stack state at the branch site.
    if plan.frame == "rbp":
        cold.initial_cfi = [
            cfi.def_cfa(DC.DWARF_REG_RBP, 16),
            cfi.offset(DC.DWARF_REG_RBP, -16),
        ]
    else:
        cold.initial_cfi = [cfi.def_cfa_offset(emitter.stack_height + 8)]

    cold_emitter = _Emitter(cold, plan.frame)
    cold_emitter.stack_height = emitter.stack_height
    cold_emitter.initialized = set(emitter.initialized)

    for _ in range(rng.randrange(2, 5)):
        _emit_arith_statement(cold_emitter, rng)
    noreturn_callees = [c for c in plan.cold_callees if c]
    if noreturn_callees and rng.random() < 0.6:
        # Typical cold path: report an error and abort (no jump back).
        cold_emitter.raw(_ASM.mov_ri32(RDI, rng.randrange(1, 64)))
        cold_emitter.initialized.add(RDI)
        cold_emitter.call(noreturn_callees[0])
    else:
        for callee in noreturn_callees:
            _emit_call_statement(cold_emitter, callee, rng)
        cold_emitter.reloc(Reloc("jmp", return_label))

    code.cold = cold


# ----------------------------------------------------------------------
# Special function kinds
# ----------------------------------------------------------------------

def _generate_thunk(plan: FunctionPlan, emitter: _Emitter) -> None:
    if plan.emits_endbr:
        emitter.raw(_ASM.endbr64())
    target = plan.tail_call_to or (plan.callees[0] if plan.callees else plan.name)
    emitter.reloc(Reloc("jmp", target))


def _generate_terminate(plan: FunctionPlan, emitter: _Emitter) -> None:
    # Models clang's __clang_call_terminate: a tiny statically-linked helper
    # without call-frame information.
    emitter.push(RAX, record_cfa=False)
    if plan.callees:
        emitter.call(plan.callees[0])
    emitter.raw(_ASM.ud2())
