"""Tests for the x86-64 decoder, including assembler/disassembler round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86.assembler import Assembler
from repro.x86.disassembler import DecodeError, decode_instruction, decode_range
from repro.x86.operands import Imm, Mem
from repro.x86.registers import (
    GPR64,
    R9,
    R11,
    R13,
    RAX,
    RBP,
    RCX,
    RDI,
    RDX,
    RSI,
    RSP,
)

asm = Assembler()


def decode(data: bytes, address: int = 0x401000):
    return decode_instruction(data, 0, address)


# ----------------------------------------------------------------------
# Individual encodings
# ----------------------------------------------------------------------

def test_decode_push_pop():
    assert decode(asm.push(RBP)).mnemonic == "push"
    assert decode(asm.push(RBP)).operands == (RBP,)
    assert decode(asm.pop(R13)).operands == (R13,)


def test_decode_mov_forms():
    insn = decode(asm.mov_rr(RBP, RSP))
    assert insn.mnemonic == "mov" and insn.operands == (RBP, RSP)

    insn = decode(asm.mov_ri(RAX, -5))
    assert insn.operands[0] is RAX
    assert isinstance(insn.operands[1], Imm) and insn.operands[1].value == -5

    insn = decode(asm.mov_ri(R9, 0x11_2233_4455))
    assert insn.operands[1].value == 0x11_2233_4455

    insn = decode(asm.mov_load(RDX, Mem(base=RBP, disp=-16)))
    assert isinstance(insn.operands[1], Mem)
    assert insn.operands[1].base is RBP and insn.operands[1].disp == -16

    insn = decode(asm.mov_store(Mem(base=RSP, disp=8), RDI))
    assert insn.operands == (Mem(base=RSP, disp=8), RDI)


def test_decode_lea_rip_relative_target():
    insn = decode(asm.lea(RDI, Mem(rip_relative=True, disp=0x100)), address=0x400000)
    assert insn.mnemonic == "lea"
    assert insn.rip_target == 0x400000 + insn.size + 0x100


def test_decode_call_and_jump_targets_are_absolute():
    call = decode(asm.call_rel32(0x50), address=0x1000)
    assert call.is_call and call.branch_target == 0x1000 + 5 + 0x50

    jmp8 = decode(asm.jmp_rel8(-2), address=0x1000)
    assert jmp8.is_unconditional_jump and jmp8.branch_target == 0x1000

    jcc = decode(asm.jcc_rel32("ne", 0x20), address=0x2000)
    assert jcc.mnemonic == "jne" and jcc.branch_target == 0x2000 + 6 + 0x20


def test_decode_indirect_branches_have_no_static_target():
    insn = decode(asm.jmp_mem(Mem(base=RAX, index=RDI, scale=8)))
    assert insn.is_indirect_branch and insn.branch_target is None

    insn = decode(asm.call_reg(R11))
    assert insn.is_call and insn.is_indirect_branch


def test_decode_arithmetic_group1():
    insn = decode(asm.sub_ri(RSP, 0x28))
    assert insn.mnemonic == "sub" and insn.operands[0] is RSP
    assert insn.operands[1].value == 0x28

    insn = decode(asm.cmp_ri(RDI, 3))
    assert insn.mnemonic == "cmp"

    insn = decode(asm.and_ri(RSP, -16))
    assert insn.mnemonic == "and" and insn.operands[1].value == -16


def test_decode_test_cmp_xor_register_forms():
    assert decode(asm.test_rr(RAX, RAX)).mnemonic == "test"
    assert decode(asm.cmp_rr(RDI, RSI)).mnemonic == "cmp"
    insn = decode(asm.xor_rr32(RCX, RCX))
    assert insn.mnemonic == "xor" and insn.operand_size == 4


def test_decode_misc_opcodes():
    assert decode(asm.ret()).is_ret
    assert decode(asm.leave()).mnemonic == "leave"
    assert decode(asm.endbr64()).mnemonic == "endbr64"
    assert decode(asm.syscall()).mnemonic == "syscall"
    assert decode(asm.ud2()).mnemonic == "ud2"
    assert decode(asm.hlt()).mnemonic == "hlt"
    assert decode(b"\xcc").mnemonic == "int3"


def test_decode_multibyte_nops():
    for length in range(1, 10):
        insns = list(decode_range(asm.nop(length), 0))
        assert all(i.is_nop for i in insns)
        assert sum(i.size for i in insns) == length


def test_decode_movzx_movsx():
    assert decode(b"\x48\x0f\xb6\xc7").mnemonic == "movzx"
    assert decode(b"\x48\x0f\xbe\xc7").mnemonic == "movsx"


def test_decode_rejects_unknown_opcode():
    with pytest.raises(DecodeError):
        decode(b"\x06")  # invalid in 64-bit mode
    with pytest.raises(DecodeError):
        decode(b"\x0f\xff\x00")


def test_decode_rejects_truncated_instruction():
    with pytest.raises(DecodeError):
        decode(b"\x48\xc7")
    with pytest.raises(DecodeError):
        decode(b"\xe8\x01\x02")


def test_decode_empty_input():
    with pytest.raises(DecodeError):
        decode(b"")


def test_decode_range_stops_or_skips_on_error():
    blob = asm.ret() + b"\x06" + asm.ret()
    stopped = list(decode_range(blob, 0x1000))
    assert len(stopped) == 1

    skipped = list(decode_range(blob, 0x1000, stop_on_error=False))
    assert [i.mnemonic for i in skipped] == ["ret", "(bad)", "ret"]
    assert skipped[1].size == 1


# ----------------------------------------------------------------------
# Round trips and robustness (property-based)
# ----------------------------------------------------------------------

_REGS = st.sampled_from(GPR64)
_SMALL = st.integers(min_value=-(2**31), max_value=2**31 - 1)


@given(reg=_REGS)
def test_roundtrip_push_pop(reg):
    assert decode(asm.push(reg)).operands == (reg,)
    assert decode(asm.pop(reg)).operands == (reg,)


@given(dst=_REGS, src=_REGS)
def test_roundtrip_mov_rr(dst, src):
    insn = decode(asm.mov_rr(dst, src))
    assert insn.mnemonic == "mov" and insn.operands == (dst, src)


@given(reg=_REGS, value=st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_roundtrip_mov_immediate(reg, value):
    insn = decode(asm.mov_ri(reg, value))
    assert insn.operands[0] is reg
    assert insn.operands[1].value == value


@given(reg=_REGS, value=_SMALL)
def test_roundtrip_group1_immediates(reg, value):
    for encode, mnemonic in ((asm.add_ri, "add"), (asm.sub_ri, "sub"), (asm.cmp_ri, "cmp")):
        insn = decode(encode(reg, value))
        assert insn.mnemonic == mnemonic
        assert insn.operands[0] is reg and insn.operands[1].value == value


@given(
    base=st.one_of(st.none(), _REGS),
    index=st.one_of(st.none(), st.sampled_from([r for r in GPR64 if r is not RSP])),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    dst=_REGS,
)
def test_roundtrip_memory_operands(base, index, scale, disp, dst):
    mem = Mem(base=base, index=index, scale=scale, disp=disp)
    insn = decode(asm.mov_load(dst, mem))
    assert insn.mnemonic == "mov"
    assert insn.operands[0] is dst
    decoded = insn.operands[1]
    assert isinstance(decoded, Mem)
    assert decoded.base == base
    assert decoded.disp == disp
    if index is not None:
        assert decoded.index == index and decoded.scale == scale


@given(rel=st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_roundtrip_call_target(rel):
    address = 0x401000
    insn = decode(asm.call_rel32(rel), address=address)
    assert insn.branch_target == (address + 5 + rel)


@given(data=st.binary(min_size=1, max_size=16))
@settings(max_examples=300)
def test_decoder_never_crashes_or_overruns(data):
    """Arbitrary bytes either decode within bounds or raise DecodeError."""
    try:
        insn = decode_instruction(data, 0, 0x1000)
    except DecodeError:
        return
    assert 1 <= insn.size <= min(len(data), 15)


@given(data=st.binary(min_size=0, max_size=64))
@settings(max_examples=200)
def test_decode_range_always_terminates_and_covers_bytes(data):
    insns = list(decode_range(data, 0, stop_on_error=False))
    assert sum(i.size for i in insns) == len(data)
    addresses = [i.address for i in insns]
    assert addresses == sorted(addresses)
