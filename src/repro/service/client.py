"""A line-protocol client for the TCP detection server.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.protocol` over a socket.  A background reader thread
demultiplexes the server's event stream: asynchronous ``result`` /
``job-done`` events are routed into per-job queues, everything else
(``accepted``, ``status``, ``stats``, ``auth-ok``, ``error``, ``bye``) is
a *response* to the client's last request — the session's request loop
answers requests in order, so responses are matched by arrival order
under a request lock.

Usage::

    with ServiceClient.connect(host, port, token="s3cret") as client:
        job = client.submit(paths, detectors=["fetch"])
        for event in client.results(job):
            print(event["name"], event["count"])
        print(client.wait(job))        # {"event": "status", "state": "done", ...}
        print(client.stats()["detector_runs"])

A server-side refusal (an ``error`` event answering a request) raises
:class:`ServerError`; a dropped connection raises ``ConnectionError`` from
whichever call was waiting on it.  The client is thread-safe: requests
serialize on an internal lock, and ``results`` for different jobs can be
consumed from different threads.

``EXTENDING.md`` walks through writing a third-party client from scratch;
this module is the reference implementation.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from typing import Any, Iterator, Sequence

_CLOSED = object()  # sentinel pushed to every queue when the stream ends


class ServerError(RuntimeError):
    """The server answered a request with an ``error`` event."""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.DetectionServer`."""

    def __init__(self, sock: socket.socket, *, timeout: float | None = 60.0):
        self.timeout = timeout
        self._sock = sock
        self._reader_file = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._request_lock = threading.Lock()
        self._responses: "queue.Queue[Any]" = queue.Queue()
        self._job_queues: dict[int, "queue.Queue[Any]"] = {}
        self._job_done: dict[int, dict[str, Any]] = {}
        self._jobs_lock = threading.Lock()
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="service-client-reader", daemon=True
        )
        self._reader.start()

    # -- construction ---------------------------------------------------
    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        token: str | None = None,
        timeout: float | None = 60.0,
    ) -> "ServiceClient":
        """Open a connection and (when ``token`` is given) authenticate."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)  # the reader thread blocks; calls use queue timeouts
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client = cls(sock, timeout=timeout)
        if token is not None:
            client.authenticate(token)
        return client

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing --------------------------------------------------
    def _read_loop(self) -> None:
        try:
            for raw in self._reader_file:
                try:
                    event = json.loads(raw)
                except ValueError:
                    continue  # not ours to diagnose; skip the line
                if not isinstance(event, dict):
                    continue
                if event.get("event") in ("result", "job-done"):
                    self._job_queue(int(event.get("job", -1))).put(event)
                    if event["event"] == "job-done":
                        with self._jobs_lock:
                            self._job_done[int(event["job"])] = event
                else:
                    self._responses.put(event)
        except (OSError, ValueError):
            pass
        finally:
            self._closed = True
            self._responses.put(_CLOSED)
            with self._jobs_lock:
                for job_queue in self._job_queues.values():
                    job_queue.put(_CLOSED)

    def _job_queue(self, job_id: int) -> "queue.Queue[Any]":
        with self._jobs_lock:
            job_queue = self._job_queues.get(job_id)
            if job_queue is None:
                job_queue = queue.Queue()
                self._job_queues[job_id] = job_queue
                if self._closed:
                    job_queue.put(_CLOSED)
            return job_queue

    def _send(self, request: dict[str, Any]) -> None:
        data = (json.dumps(request) + "\n").encode("utf-8")
        with self._send_lock:
            try:
                self._sock.sendall(data)
            except OSError as error:
                raise ConnectionError(f"server connection lost: {error}") from error

    def _request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Send one request and return its (in-order) response event."""
        with self._request_lock:
            self._send(request)
            try:
                response = self._responses.get(timeout=self.timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no response to {request.get('op')!r} within {self.timeout}s"
                ) from None
        if response is _CLOSED:
            raise ConnectionError("server closed the connection")
        if response.get("event") == "error":
            raise ServerError(response.get("error", "unspecified server error"))
        return response

    # -- protocol verbs -------------------------------------------------
    def authenticate(self, token: str) -> None:
        """Perform the shared-token handshake (first request on the wire)."""
        response = self._request({"op": "auth", "token": token})
        if response.get("event") != "auth-ok":
            raise ServerError(f"unexpected auth response: {response}")

    def submit(
        self, paths: Sequence[str], detectors: Sequence[str] | None = None
    ) -> int:
        """Submit a batch; returns the session-local job id."""
        request: dict[str, Any] = {"op": "submit", "paths": list(paths)}
        if detectors is not None:
            request["detectors"] = list(detectors)
        response = self._request(request)
        if response.get("event") != "accepted":
            raise ServerError(f"unexpected submit response: {response}")
        return int(response["job"])

    def results(
        self, job_id: int, *, timeout: float | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's ``result`` events until its ``job-done`` arrives.

        The terminal ``job-done`` event is retained and queryable through
        :meth:`summary` afterwards.  ``timeout`` bounds the wait for each
        next event (default: the client's timeout).
        """
        job_queue = self._job_queue(job_id)
        wait = self.timeout if timeout is None else timeout
        while True:
            try:
                event = job_queue.get(timeout=wait)
            except queue.Empty:
                raise TimeoutError(
                    f"job {job_id}: no event within {wait}s"
                ) from None
            if event is _CLOSED:
                raise ConnectionError("server closed the connection mid-stream")
            if event["event"] == "job-done":
                return
            yield event

    def summary(self, job_id: int) -> dict[str, Any] | None:
        """The ``job-done`` event of a fully-consumed job, if it arrived."""
        with self._jobs_lock:
            return self._job_done.get(job_id)

    def status(self, job_id: int) -> dict[str, Any]:
        return self._request({"op": "status", "job": job_id})

    def wait(self, job_id: int) -> dict[str, Any]:
        """Block until the job is done server-side; returns its status event.

        When this returns, every ``result`` and the ``job-done`` event of
        the job have already been enqueued locally (the server orders them
        before the ``status`` response on the wire).
        """
        return self._request({"op": "wait", "job": job_id})

    def stats(self) -> dict[str, Any]:
        return self._request({"op": "stats"})

    # -- teardown -------------------------------------------------------
    def shutdown(self) -> None:
        """End the session politely (``shutdown`` op, wait for ``bye``)."""
        try:
            response = self._request({"op": "shutdown"})
            if response.get("event") != "bye":  # pragma: no cover - defensive
                raise ServerError(f"unexpected shutdown response: {response}")
        finally:
            self.close()

    def close(self) -> None:
        """Drop the connection (the server handles an abrupt close cleanly)."""
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=5)
