"""Tests for safe recursive disassembly, jump tables and noreturn analysis."""

from repro.analysis import NoreturnAnalysis, RecursiveDisassembler
from repro.core.fde_source import extract_fde_starts


def disassemble_from_fdes(binary):
    disassembler = RecursiveDisassembler(binary.image)
    return disassembler, disassembler.disassemble(extract_fde_starts(binary.image))


def test_recursion_discovers_direct_call_targets(rich_binary):
    _, result = disassemble_from_fdes(rich_binary)
    truth = rich_binary.ground_truth
    reachable = {
        f.address for f in truth.functions if f.reachable_via in ("call", "entry")
    }
    assert reachable <= result.function_starts | result.call_targets


def test_recursion_does_not_invent_function_starts(rich_binary):
    _, result = disassemble_from_fdes(rich_binary)
    truth = rich_binary.ground_truth
    allowed = truth.function_starts | truth.cold_part_starts
    allowed |= {f.address + f.bad_fde_offset for f in truth.functions if f.bad_fde_offset}
    for target in result.call_targets:
        assert target in allowed, hex(target)


def test_every_decoded_instruction_is_inside_text(rich_binary):
    _, result = disassemble_from_fdes(rich_binary)
    text = rich_binary.image.text
    for address, insn in result.instructions.items():
        assert text.contains(address)
        assert insn.end <= text.end_address
        assert insn.mnemonic != "(bad)"


def test_instructions_do_not_overlap_within_a_function(plain_binary):
    _, result = disassemble_from_fdes(plain_binary)
    for function in result.functions.values():
        ordered = function.sorted_instructions
        for first, second in zip(ordered, ordered[1:]):
            assert first.end <= second.address or first.address == second.address


def test_jump_table_targets_are_followed(rich_binary):
    _, result = disassemble_from_fdes(rich_binary)
    truth = rich_binary.ground_truth
    table_functions = [p for p in rich_binary.plan.functions if p.jump_table_cases]
    assert table_functions, "fixture should contain jump tables"
    for plan in table_functions:
        info = truth.by_name(plan.name)
        function = result.functions.get(info.address)
        assert function is not None
        # The indirect jump must not be the end of exploration: the function
        # body after the switch (its ret) must have been reached.
        assert any(i.is_ret for i in function.instructions.values()), plan.name


def test_indirect_calls_are_skipped_not_followed(rich_binary):
    _, result = disassemble_from_fdes(rich_binary)
    truth = rich_binary.ground_truth
    indirect_only_asm = [
        f for f in truth.functions if f.reachable_via == "indirect" and not f.has_fde
    ]
    for info in indirect_only_asm:
        assert info.address not in result.function_starts
        assert info.address not in result.call_targets


def test_noreturn_classification_precise(rich_binary):
    disassembler, result = disassemble_from_fdes(rich_binary)
    truth = rich_binary.ground_truth
    noreturn = NoreturnAnalysis(rich_binary.image, mode="precise").compute(result, disassembler)
    for info in truth.functions:
        if info.kind == "noreturn":
            assert info.address in noreturn, info.name
        if info.kind == "normal" and not info.is_noreturn and info.address in result.functions:
            assert info.address not in noreturn or info.name == "_start", info.name


def test_noreturn_eager_overapproximates(rich_binary):
    disassembler, result = disassemble_from_fdes(rich_binary)
    precise = NoreturnAnalysis(rich_binary.image, mode="precise").compute(result, disassembler)
    eager = NoreturnAnalysis(rich_binary.image, mode="eager").compute(result)
    truth = rich_binary.ground_truth
    genuinely = {f.address for f in truth.functions if f.kind == "noreturn"}
    assert genuinely <= eager
    # Precise analysis never flags ordinary returning functions.
    ordinary = {
        info.address
        for plan in rich_binary.plan.functions
        for info in [truth.by_name(plan.name)]
        if plan.kind == "normal" and plan.noreturn_callee is None
    }
    assert not (precise & ordinary)


def test_fallthrough_stops_after_call_to_noreturn_function(rich_binary):
    disassembler, result = disassemble_from_fdes(rich_binary)
    truth = rich_binary.ground_truth
    start = truth.by_name("_start")
    function = result.functions[start.address]
    # _start ends with `call exit_impl`; the padding after it must not be
    # decoded as part of the function.
    last = max(function.instructions.values(), key=lambda i: i.address)
    assert last.is_call
    exit_info = truth.by_name("exit_impl")
    assert last.branch_target == exit_info.address


def test_disassembler_handles_non_executable_seeds(rich_binary):
    disassembler = RecursiveDisassembler(rich_binary.image)
    rodata = rich_binary.image.section(".rodata")
    result = disassembler.disassemble({rodata.address})
    assert result.functions == {}


def test_code_constants_exclude_branch_targets(plain_binary):
    _, result = disassemble_from_fdes(plain_binary)
    truth = plain_binary.ground_truth
    call_reachable = {f.address for f in truth.functions if f.reachable_via == "call"}
    # Functions referenced purely by calls must not show up as "constants".
    immediate_refs = {
        f.address
        for plan in plain_binary.plan.functions
        for f in [truth.by_name(plan.name)]
        if plan.address_refs
    }
    assert not (result.code_constants & call_reachable - immediate_refs)
