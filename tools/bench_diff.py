#!/usr/bin/env python3
"""Compare two ``BENCH_cold_latency.json`` records.

Usage::

    python tools/bench_diff.py OLD.json NEW.json [--max-regression PCT]

Prints a per-binary table of cold latency (in machine-calibrated units, the
cross-host comparable measure), raw decode counts and decoder-sweep
throughput, with the relative change between the two records.  With
``--max-regression`` the exit status is non-zero when any binary's
``cold_units`` regressed by more than PCT percent — the CI smoke mode that
diffs a freshly measured record against the committed one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: str) -> dict:
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    if record.get("bench") != "cold_latency" or "binaries" not in record:
        raise SystemExit(f"error: {path} is not a cold_latency bench record")
    return record


def _change(old: float, new: float) -> str:
    if not old:
        return "-"
    delta = (new - old) / old * 100.0
    return f"{delta:+.1f}%"


def diff_records(old: dict, new: dict) -> tuple[str, list[tuple[str, float]]]:
    """Render the comparison; returns ``(report, per-binary unit changes)``."""
    lines = [
        f"{'binary':<30} {'old units':>10} {'new units':>10} {'change':>8} "
        f"{'old dec':>8} {'new dec':>8}",
        "-" * 78,
    ]
    regressions: list[tuple[str, float]] = []
    names = [n for n in old["binaries"] if n in new["binaries"]]
    for name in names:
        o, n = old["binaries"][name], new["binaries"][name]
        lines.append(
            f"{name:<30} {o['cold_units']:>10.3f} {n['cold_units']:>10.3f} "
            f"{_change(o['cold_units'], n['cold_units']):>8} "
            f"{o['raw_decodes']:>8} {n['raw_decodes']:>8}"
        )
        if o["cold_units"]:
            regressions.append(
                (name, (n["cold_units"] - o["cold_units"]) / o["cold_units"])
            )
    only_old = sorted(set(old["binaries"]) - set(new["binaries"]))
    only_new = sorted(set(new["binaries"]) - set(old["binaries"]))
    if only_old:
        lines.append(f"only in old record: {', '.join(only_old)}")
    if only_new:
        lines.append(f"only in new record: {', '.join(only_new)}")

    od, nd = old.get("decoder"), new.get("decoder")
    if od and nd:
        lines.append(
            f"{'decoder sweep (M insn/s)':<30} {od['minsn_per_second']:>10.3f} "
            f"{nd['minsn_per_second']:>10.3f} "
            f"{_change(od['minsn_per_second'], nd['minsn_per_second']):>8}"
        )
    return "\n".join(lines), regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline cold_latency record")
    parser.add_argument("new", help="candidate cold_latency record")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if any binary's cold_units grew by more than "
             "PCT percent",
    )
    args = parser.parse_args(argv)

    report, regressions = diff_records(_load(args.old), _load(args.new))
    print(report)

    if args.max_regression is not None:
        limit = args.max_regression / 100.0
        failing = [(n, d) for n, d in regressions if d > limit]
        if failing:
            for name, delta in failing:
                print(
                    f"REGRESSION: {name} cold_units {delta * 100:+.1f}% "
                    f"(limit {args.max_regression:+.1f}%)",
                    file=sys.stderr,
                )
            return 1
        print(f"ok: no binary regressed beyond {args.max_regression:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
