"""ELF-64 executable writer.

Serialises an :class:`~repro.elf.structs.ElfFile` into a well-formed ELF
image: ELF header, one ``PT_LOAD`` program header per allocated section, a
``PT_GNU_EH_FRAME`` header when an ``.eh_frame_hdr`` section is present,
section contents, ``.symtab``/``.strtab``/``.shstrtab`` and the section header
table.  The output parses with standard tooling (``readelf``) as well as with
:mod:`repro.elf.reader`.
"""

from __future__ import annotations

import struct

from repro.elf import constants as C
from repro.elf.structs import ElfFile, Section


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) & ~(alignment - 1)


def write_elf(elf: ElfFile) -> bytes:
    """Serialise ``elf`` to bytes."""
    return _ElfWriter(elf).render()


def write_elf_file(elf: ElfFile, path: str) -> None:
    """Serialise ``elf`` and write it to ``path``."""
    data = write_elf(elf)
    with open(path, "wb") as stream:
        stream.write(data)


class _ElfWriter:
    def __init__(self, elf: ElfFile):
        self.elf = elf
        self.sections: list[Section] = [Section(name="", sh_type=C.SHT_NULL, flags=0, align=0)]
        self.sections.extend(elf.sections)

    # ------------------------------------------------------------------
    def render(self) -> bytes:
        self._append_symbol_sections()
        shstrtab_index = self._append_shstrtab()

        allocated = [s for s in self.sections if s.is_allocated and s.sh_type != C.SHT_NULL]
        eh_frame_hdr = next((s for s in allocated if s.name == ".eh_frame_hdr"), None)
        program_header_count = len(allocated) + (1 if eh_frame_hdr is not None else 0)

        header_size = C.ELF_HEADER_SIZE + program_header_count * C.PROGRAM_HEADER_SIZE
        offsets: dict[int, int] = {}
        cursor = header_size
        for index, section in enumerate(self.sections):
            if section.sh_type == C.SHT_NULL:
                offsets[index] = 0
                continue
            cursor = _align(cursor, max(section.align, 1))
            offsets[index] = cursor
            if section.sh_type != C.SHT_NOBITS:
                cursor += len(section.data)
        section_header_offset = _align(cursor, 8)

        out = bytearray()
        out += self._elf_header(program_header_count, section_header_offset, shstrtab_index)
        out += self._program_headers(allocated, eh_frame_hdr, offsets)
        for index, section in enumerate(self.sections):
            if section.sh_type in (C.SHT_NULL, C.SHT_NOBITS):
                continue
            out += b"\x00" * (offsets[index] - len(out))
            out += section.data
        out += b"\x00" * (section_header_offset - len(out))
        out += self._section_headers(offsets)
        return bytes(out)

    # ------------------------------------------------------------------
    def _append_symbol_sections(self) -> None:
        if not self.elf.symbols:
            # A fully stripped binary carries no .symtab/.strtab at all
            # (matching what `strip` produces), rather than empty tables.
            return
        strtab = bytearray(b"\x00")
        name_offsets: dict[str, int] = {}

        def intern(name: str) -> int:
            if not name:
                return 0
            if name not in name_offsets:
                name_offsets[name] = len(strtab)
                strtab.extend(name.encode() + b"\x00")
            return name_offsets[name]

        section_indices = {section.name: idx for idx, section in enumerate(self.sections)}
        symbols = sorted(self.elf.symbols, key=lambda s: s.binding != C.STB_LOCAL)
        first_global = next(
            (i for i, s in enumerate(symbols) if s.binding != C.STB_LOCAL), len(symbols)
        )

        symtab = bytearray(b"\x00" * C.SYMBOL_ENTRY_SIZE)  # null symbol
        for symbol in symbols:
            st_name = intern(symbol.name)
            st_info = (symbol.binding << 4) | (symbol.sym_type & 0xF)
            shndx = section_indices.get(symbol.section_name or "", 0)
            symtab += struct.pack(
                "<IBBHQQ", st_name, st_info, 0, shndx, symbol.address, symbol.size
            )

        symtab_index = len(self.sections)
        self.sections.append(
            Section(
                name=".symtab",
                data=bytes(symtab),
                sh_type=C.SHT_SYMTAB,
                flags=0,
                entsize=C.SYMBOL_ENTRY_SIZE,
                link=symtab_index + 1,
                info=first_global + 1,
            )
        )
        self.sections.append(
            Section(name=".strtab", data=bytes(strtab), sh_type=C.SHT_STRTAB, flags=0, align=1)
        )

    def _append_shstrtab(self) -> int:
        shstrtab = bytearray(b"\x00")
        self._shstr_offsets: dict[str, int] = {"": 0}
        index = len(self.sections)
        names = [section.name for section in self.sections] + [".shstrtab"]
        for name in names:
            if name and name not in self._shstr_offsets:
                self._shstr_offsets[name] = len(shstrtab)
                shstrtab.extend(name.encode() + b"\x00")
        self.sections.append(
            Section(
                name=".shstrtab", data=bytes(shstrtab), sh_type=C.SHT_STRTAB, flags=0, align=1
            )
        )
        return index

    # ------------------------------------------------------------------
    def _elf_header(
        self, program_header_count: int, section_header_offset: int, shstrtab_index: int
    ) -> bytes:
        e_ident = C.ELF_MAGIC + bytes(
            [C.ELFCLASS64, C.ELFDATA2LSB, C.EV_CURRENT, C.ELFOSABI_SYSV]
        ) + b"\x00" * 8
        return e_ident + struct.pack(
            "<HHIQQQIHHHHHH",
            self.elf.elf_type,
            C.EM_X86_64,
            C.EV_CURRENT,
            self.elf.entry_point,
            C.ELF_HEADER_SIZE,
            section_header_offset,
            0,
            C.ELF_HEADER_SIZE,
            C.PROGRAM_HEADER_SIZE,
            program_header_count,
            C.SECTION_HEADER_SIZE,
            len(self.sections),
            shstrtab_index,
        )

    def _program_headers(
        self,
        allocated: list[Section],
        eh_frame_hdr: Section | None,
        offsets: dict[int, int],
    ) -> bytes:
        out = bytearray()
        index_of = {id(section): idx for idx, section in enumerate(self.sections)}
        for section in allocated:
            flags = C.PF_R
            if section.is_executable:
                flags |= C.PF_X
            if section.is_writable:
                flags |= C.PF_W
            file_size = 0 if section.sh_type == C.SHT_NOBITS else len(section.data)
            out += struct.pack(
                "<IIQQQQQQ",
                C.PT_LOAD,
                flags,
                offsets[index_of[id(section)]],
                section.address,
                section.address,
                file_size,
                len(section.data),
                max(section.align, 1),
            )
        if eh_frame_hdr is not None:
            out += struct.pack(
                "<IIQQQQQQ",
                C.PT_GNU_EH_FRAME,
                C.PF_R,
                offsets[index_of[id(eh_frame_hdr)]],
                eh_frame_hdr.address,
                eh_frame_hdr.address,
                len(eh_frame_hdr.data),
                len(eh_frame_hdr.data),
                4,
            )
        return bytes(out)

    def _section_headers(self, offsets: dict[int, int]) -> bytes:
        out = bytearray()
        for index, section in enumerate(self.sections):
            sh_name = self._shstr_offsets.get(section.name, 0)
            out += struct.pack(
                "<IIQQQQIIQQ",
                sh_name,
                section.sh_type,
                section.flags,
                section.address,
                offsets[index],
                len(section.data),
                section.link,
                section.info,
                max(section.align, 1) if section.sh_type != C.SHT_NULL else 0,
                section.entsize,
            )
        return bytes(out)
