"""ROP gadget counting.

§V-A of the paper measures the security impact of FDE-introduced false
function starts by counting the ROP gadgets contained in the basic blocks at
those starts (using ROPgadget).  This module provides the equivalent
measurement: for a given start address, every suffix of the byte window up to
the first ``ret`` that decodes cleanly and ends exactly at that ``ret`` with
a bounded number of instructions counts as one gadget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.elf.image import BinaryImage
from repro.x86.disassembler import DecodeError, decode_instruction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext

_MAX_WINDOW = 64
_MAX_GADGET_INSTRUCTIONS = 5


def count_rop_gadgets(
    image: BinaryImage,
    address: int,
    *,
    window: int = _MAX_WINDOW,
    context: "AnalysisContext | None" = None,
    cache: "dict[int, object] | None" = None,
) -> int:
    """Count ROP gadgets in the code window starting at ``address``.

    ``cache`` is a shared decode memo (``address -> Instruction | None``);
    gadget scans probe many misaligned suffixes, and the decode of any
    address is a pure function of the image bytes, so sharing the context's
    cache is safe and lets overlapping windows reuse each other's decodes.
    """
    if context is not None:
        return context.gadget_count(address, window=window)
    section = image.section_containing(address)
    if section is None or not section.is_executable:
        return 0
    begin = address - section.address
    end = min(begin + window, len(section.data))
    data = section.data

    ret_offset = data.find(b"\xc3", begin, end)
    if ret_offset == -1:
        return 0

    gadgets = 0
    for start in range(begin, ret_offset + 1):
        if _decodes_to_ret(data, start, ret_offset, section.address, cache):
            gadgets += 1
    return gadgets


def count_gadgets_at_starts(
    image: BinaryImage,
    addresses: set[int],
    *,
    context: "AnalysisContext | None" = None,
) -> int:
    """Total gadget count over a set of (false) function start addresses."""
    return sum(count_rop_gadgets(image, address, context=context) for address in addresses)


def _decodes_to_ret(
    data: bytes, start: int, ret_offset: int, base: int, cache=None
) -> bool:
    offset = start
    for _ in range(_MAX_GADGET_INSTRUCTIONS):
        if offset == ret_offset:
            return True
        if offset > ret_offset:
            return False
        try:
            insn = decode_instruction(data, offset, base + offset, cache)
        except DecodeError:
            return False
        if insn.is_ret or insn.is_branch:
            return False
        offset += insn.size
    return False
