"""Detection result model with per-stage attribution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.result import DisassemblyResult


@dataclass
class DetectionResult:
    """The output of a detection pipeline run on one binary.

    ``stages`` records, in pipeline order, which function starts each stage
    added (positive attribution) and which it removed, so the coverage /
    accuracy studies of §IV and §V can report per-strategy deltas.
    """

    binary_name: str
    function_starts: set[int] = field(default_factory=set)
    #: stage name -> starts added by that stage
    added_by_stage: dict[str, set[int]] = field(default_factory=dict)
    #: stage name -> starts removed by that stage
    removed_by_stage: dict[str, set[int]] = field(default_factory=dict)
    #: cold-part start -> parent function start, for merged parts
    merged_parts: dict[int, int] = field(default_factory=dict)
    #: tail-call targets promoted to function starts by Algorithm 1
    tail_call_targets: set[int] = field(default_factory=set)
    #: the final recursive-disassembly state (when the pipeline ran one)
    disassembly: DisassemblyResult | None = None

    def record_stage(self, name: str, added: set[int], removed: set[int] | None = None) -> None:
        """Apply and record one stage's effect on the detected set."""
        removed = removed or set()
        self.added_by_stage[name] = set(added)
        self.removed_by_stage[name] = set(removed)
        self.function_starts |= added
        self.function_starts -= removed

    @property
    def stage_names(self) -> list[str]:
        return list(self.added_by_stage)
