"""Ablation — why Algorithm 1 needs all three tail-call criteria.

The paper argues each restriction (stack height 0, calling-convention check,
target not referenced elsewhere) is necessary to avoid false tail calls that
would leave non-contiguous parts unmerged or, worse, promote arbitrary jump
targets to function starts.  This benchmark drops each criterion in turn and
measures the resulting error counts.
"""

from repro.analysis.recursive import RecursiveDisassembler
from repro.core.fde_source import extract_fde_starts
from repro.core.tailcall import detect_tail_calls_and_merge
from repro.eval.metrics import CorpusMetrics, compute_metrics


def _run_variant(corpus, **flags):
    metrics = CorpusMetrics()
    for binary in corpus:
        image = binary.image
        seeds = extract_fde_starts(image)
        disassembly = RecursiveDisassembler(image).disassemble(seeds)
        outcome = detect_tail_calls_and_merge(image, disassembly, set(seeds), **flags)
        detected = (set(seeds) - outcome.removed_starts) | outcome.added_starts
        metrics.add(compute_metrics(binary.ground_truth, detected))
    return metrics


def run_ablation(corpus):
    return {
        "all criteria": _run_variant(corpus),
        "no stack-height check": _run_variant(corpus, require_zero_stack_height=False),
        "no calling-convention check": _run_variant(corpus, require_calling_convention=False),
        "no reference check": _run_variant(corpus, require_unreferenced_target=False),
    }


def render(results):
    lines = ["Ablation — Algorithm 1 tail-call criteria", "-" * 60]
    lines.append(f"{'variant':<30} {'FP':>8} {'FN':>8} {'full acc.':>10}")
    for label, metrics in results.items():
        lines.append(
            f"{label:<30} {metrics.total_false_positives:>8d} "
            f"{metrics.total_false_negatives:>8d} {metrics.binaries_with_full_accuracy:>10d}"
        )
    return "\n".join(lines)


def test_ablation_algorithm1_criteria(benchmark, selfbuilt_corpus_small, report_writer):
    results = benchmark.pedantic(
        run_ablation, args=(selfbuilt_corpus_small,), rounds=1, iterations=1
    )
    report_writer("ablation_algorithm1", render(results))

    complete = results["all criteria"]
    # Dropping the stack-height criterion lets cold-part jumps (taken at
    # non-zero height) be classified as tail calls, so parts stay unmerged:
    # false positives can only go up.
    assert (
        results["no stack-height check"].total_false_positives
        >= complete.total_false_positives
    )
    # Dropping the reference check turns shared helpers into "tail call
    # targets" and prevents merges the full algorithm performs.
    assert (
        results["no reference check"].total_false_positives
        >= complete.total_false_positives
    )
    # The complete algorithm never reports more false positives than any
    # ablated variant (its criteria only ever restrict what gets accepted).
    for label, metrics in results.items():
        assert complete.total_false_positives <= metrics.total_false_positives, label
    # Dropping criteria never improves accuracy: the binaries with full
    # accuracy under the complete algorithm are a superset of every variant.
    for label, metrics in results.items():
        assert (
            complete.binaries_with_full_accuracy >= metrics.binaries_with_full_accuracy
        ), label
